//! Adaptive-pipeline benchmark: the controller against the static sweep.
//!
//! The experiment reuses the spine of [`crate::stream_throughput`] — the
//! same pre-encoded records, the same decode → bus → sink pipeline, the
//! same merged-report correctness check — but hands the shard width, the
//! drain cadence, and the backpressure policy to an
//! [`nmo::AdaptiveRuntime`] instead of fixing them. Pump workers park and
//! re-activate as the controller moves the active width, exactly like the
//! session's pump workers: the allocated topology (lanes, consumers, sink
//! shards) is fixed, work is redistributed over the active workers by slot
//! striding, and every consumer stays subscribed so the deterministic
//! shard-order merge is unaffected.
//!
//! `BENCH_stream_adaptive.json` records the static sweep, the adaptive
//! sweep over allocated widths, and the headline ratio
//! `best_adaptive / best_static` — the controller's job is to land within
//! ~10% of the best static configuration without being told which one it
//! is (CI asserts ≥ 0.9×).
//!
//! Bench-harness code: a violated setup assumption should abort the run,
//! so panicking `expect`s are the intended failure mode here.
// nmo-lint: allow-file(no-unwrap-in-lib)

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nmo::sink::{ShardState, SinkShard};
use nmo::stream::{BackpressurePolicy, BusRecv, WindowClock};
use nmo::{
    AdaptiveOptions, AdaptiveRuntime, AnalysisSink, Annotations, BatchPool, LatencySink, NmoConfig,
    Profile, RegionSink, ShardedBus, StreamContext,
};
use parking_lot::Mutex;

use crate::experiments::ExperimentResult;
use crate::stream_throughput::{
    encode_core, host_parallelism, pump_core_chunk, run_config, StreamBenchPoint, WINDOW_NS,
};

/// One measured adaptive configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBenchPoint {
    /// Simulated cores producing records.
    pub cores: usize,
    /// Allocated shards (lanes, consumers, sink shards).
    pub allocated: usize,
    /// Active width the controller started at.
    pub initial_active: usize,
    /// Active width when the stream ended.
    pub final_active: usize,
    /// Control decisions taken during the run.
    pub decisions: u64,
    /// Samples pushed end to end.
    pub samples: u64,
    /// Wall-clock time, milliseconds.
    pub elapsed_ms: f64,
    /// End-to-end throughput.
    pub samples_per_sec: f64,
}

/// One slot of pump work: the cores hashing to one lane, with their decode
/// cursors. Slots are shared so active workers can cover a parked worker's
/// cores (worker `w` strides over slots `s` with `s % active == w`).
struct PumpSlot {
    cores: Vec<usize>,
    cursors: Vec<usize>,
    done: bool,
}

/// Consumer receive timeout — doubles as the idle tick the runtime converts
/// idle counts with. Short, so the idle metric reacts within a few control
/// intervals.
const RECV_TIMEOUT: Duration = Duration::from_millis(1);

/// Run one adaptive configuration end to end and measure it.
pub fn run_adaptive_config(
    cores: usize,
    allocated: usize,
    records_per_core: usize,
    opts: AdaptiveOptions,
) -> AdaptiveBenchPoint {
    let encoded: Vec<Vec<u8>> = (0..cores).map(|c| encode_core(c, records_per_core)).collect();
    let encoded = Arc::new(encoded);

    let annotations = Arc::new(Annotations::new());
    annotations.tag_addr("hot", 0x1000, 0x1000 + 1024 * 64);
    annotations.tag_addr("cold", 0x1000 + 1024 * 64, 0x1000 + 4096 * 64);
    let ctx = StreamContext {
        annotations,
        capacity_bytes: 1 << 30,
        bucket_ns: WINDOW_NS,
        mem_nodes: 2,
        page_bytes: 64 * 1024,
        machine: None,
    };

    let mut latency = LatencySink::new();
    latency.on_stream_start(&ctx);
    let mut regions = RegionSink::new();
    regions.on_stream_start(&ctx);
    let mut latency_shards: Vec<Box<dyn SinkShard>> = (0..allocated)
        .map(|s| latency.as_shardable().expect("shardable").make_shard(s, &ctx))
        .collect();
    let mut region_shards: Vec<Box<dyn SinkShard>> = (0..allocated)
        .map(|s| regions.as_shardable().expect("shardable").make_shard(s, &ctx))
        .collect();

    let bus = ShardedBus::new(allocated, 1024, BackpressurePolicy::Block);
    let pool = BatchPool::new(4096);
    let clock = WindowClock::new(WINDOW_NS);
    let runtime = AdaptiveRuntime::new(
        opts,
        allocated,
        Duration::from_micros(200),
        BackpressurePolicy::Block,
        RECV_TIMEOUT,
    );
    bus.set_active_lanes(runtime.active());
    let initial_active = runtime.active();

    // One slot per lane: the cores whose batches hash there.
    let slots: Vec<Mutex<PumpSlot>> = (0..allocated)
        .map(|s| {
            let mine: Vec<usize> = (0..cores).filter(|c| c % allocated == s).collect();
            let n = mine.len();
            Mutex::named(PumpSlot { cores: mine, cursors: vec![0; n], done: false }, "bench.slots")
        })
        .collect();
    let slots_done = AtomicUsize::new(0);

    let started = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let mut consumers = Vec::with_capacity(allocated);
        for (shard, (mut lat, mut reg)) in
            latency_shards.drain(..).zip(region_shards.drain(..)).enumerate()
        {
            let lane = bus.lane(shard).clone();
            let pool = pool.clone();
            let runtime = runtime.clone();
            consumers.push(scope.spawn(move || {
                let mut consumed = 0u64;
                loop {
                    match lane.recv_timeout(RECV_TIMEOUT) {
                        BusRecv::Event(nmo::stream::BusEvent::Batch(batch)) => {
                            consumed += batch.len() as u64;
                            lat.on_batch(&batch);
                            reg.on_batch(&batch);
                            pool.recycle_batch(batch);
                        }
                        BusRecv::Event(nmo::stream::BusEvent::CloseWindow(_)) => {}
                        BusRecv::TimedOut => runtime.note_consumer_idle(shard),
                        BusRecv::Closed => return (consumed, lat, reg),
                    }
                }
            }));
        }
        // Pump workers: the allocated set, parking and re-activating as the
        // controller moves the width. Worker 0 doubles as the coordinator
        // driving the control loop.
        let mut pumps = Vec::with_capacity(allocated);
        for worker in 0..allocated {
            let bus = &bus;
            let pool = pool.clone();
            let encoded = encoded.clone();
            let runtime = runtime.clone();
            let slots = &slots;
            let slots_done = &slots_done;
            pumps.push(scope.spawn(move || {
                let mut published = 0u64;
                while slots_done.load(Ordering::Acquire) < allocated {
                    let active = bus.active_lanes();
                    if worker == 0 {
                        let _ = runtime.control(bus);
                    }
                    if worker >= active {
                        // Parked: an active worker covers this worker's
                        // slot; wake at the shared cadence to re-check.
                        #[allow(clippy::disallowed_methods)] // parked pump worker cadence
                        std::thread::sleep(runtime.poll_interval());
                        continue;
                    }
                    let mut progressed = false;
                    let mut s = worker;
                    while s < allocated {
                        let mut slot = slots[s].lock();
                        if !slot.done {
                            let mut slot_progress = false;
                            for i in 0..slot.cores.len() {
                                let core = slot.cores[i];
                                let n = pump_core_chunk(
                                    core,
                                    &encoded[core],
                                    &mut slot.cursors[i],
                                    bus,
                                    &pool,
                                    &clock,
                                );
                                if n > 0 {
                                    slot_progress = true;
                                    published += n;
                                }
                            }
                            if !slot_progress {
                                slot.done = true;
                                slots_done.fetch_add(1, Ordering::Release);
                            } else {
                                progressed = true;
                            }
                        }
                        drop(slot);
                        s += active;
                    }
                    if !progressed {
                        // Our stride is exhausted but other slots may still
                        // be live (or get reassigned to us); idle briefly.
                        #[allow(clippy::disallowed_methods)] // pump idle backoff
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
                published
            }));
        }
        let published: u64 = pumps.into_iter().map(|p| p.join().expect("pump")).sum();
        bus.close_all();
        let mut consumed = 0u64;
        let mut lat_states: Vec<ShardState> = Vec::with_capacity(allocated);
        let mut reg_states: Vec<ShardState> = Vec::with_capacity(allocated);
        for consumer in consumers {
            let (n, lat, reg) = consumer.join().expect("consumer");
            consumed += n;
            lat_states.push(lat.finish());
            reg_states.push(reg.finish());
        }
        assert_eq!(consumed, published, "Block backpressure loses nothing");
        latency.as_shardable().expect("shardable").merge_final(lat_states);
        regions.as_shardable().expect("shardable").merge_final(reg_states);
        consumed
    });
    let elapsed = started.elapsed();

    // The merge must still cover every sample with the controller moving
    // the width mid-run — correctness first, speed second.
    let profile = Profile::empty("bench", NmoConfig::default());
    let machine = arch_sim::Machine::new(arch_sim::MachineConfig::small_test());
    match latency.finish(&machine, &profile).expect("latency report") {
        nmo::AnalysisReport::Latency(l) => assert_eq!(l.total_count(), total),
        other => panic!("expected latency report, got {other:?}"),
    }

    AdaptiveBenchPoint {
        cores,
        allocated,
        initial_active,
        final_active: bus.active_lanes(),
        decisions: runtime.decisions_total(),
        samples: total,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        samples_per_sec: total as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// The `bench_stream_adaptive` experiment: a static shard sweep and an
/// adaptive sweep over the same widths (as allocated pools), at one core
/// count.
pub fn adaptive_sweep(
    cores: usize,
    widths: &[usize],
    records_per_core: usize,
) -> (Vec<StreamBenchPoint>, Vec<AdaptiveBenchPoint>) {
    let static_points: Vec<StreamBenchPoint> =
        widths.iter().map(|&s| run_config(cores, s, records_per_core)).collect();
    let adaptive_points: Vec<AdaptiveBenchPoint> = widths
        .iter()
        .map(|&a| {
            run_adaptive_config(
                cores,
                a,
                records_per_core,
                AdaptiveOptions {
                    // A short control interval and window so the controller
                    // gets several shots within a bench-sized run.
                    control_interval: Duration::from_micros(500),
                    window: 2,
                    ..AdaptiveOptions::default()
                },
            )
        })
        .collect();
    (static_points, adaptive_points)
}

/// Best throughput in a static sweep.
fn best_static(points: &[StreamBenchPoint]) -> Option<&StreamBenchPoint> {
    points.iter().max_by(|a, b| a.samples_per_sec.total_cmp(&b.samples_per_sec))
}

/// Best throughput in an adaptive sweep.
fn best_adaptive(points: &[AdaptiveBenchPoint]) -> Option<&AdaptiveBenchPoint> {
    points.iter().max_by(|a, b| a.samples_per_sec.total_cmp(&b.samples_per_sec))
}

/// `best_adaptive / best_static` — the headline the controller is judged
/// on (`None` when either sweep is empty).
pub fn adaptive_vs_best_static(
    static_points: &[StreamBenchPoint],
    adaptive_points: &[AdaptiveBenchPoint],
) -> Option<f64> {
    Some(
        best_adaptive(adaptive_points)?.samples_per_sec
            / best_static(static_points)?.samples_per_sec,
    )
}

/// Render both sweeps as one [`ExperimentResult`] table (`mode` column
/// distinguishes static rows from adaptive rows).
pub fn to_experiment(
    static_points: &[StreamBenchPoint],
    adaptive_points: &[AdaptiveBenchPoint],
) -> ExperimentResult {
    let mut rows: Vec<Vec<String>> = static_points
        .iter()
        .map(|p| {
            vec![
                "static".into(),
                p.cores.to_string(),
                p.shards.to_string(),
                p.shards.to_string(),
                "0".into(),
                p.samples.to_string(),
                format!("{:.3}", p.elapsed_ms),
                format!("{:.0}", p.samples_per_sec),
            ]
        })
        .collect();
    rows.extend(adaptive_points.iter().map(|p| {
        vec![
            "adaptive".into(),
            p.cores.to_string(),
            p.allocated.to_string(),
            p.final_active.to_string(),
            p.decisions.to_string(),
            p.samples.to_string(),
            format!("{:.3}", p.elapsed_ms),
            format!("{:.0}", p.samples_per_sec),
        ]
    }));
    ExperimentResult {
        id: "bench_stream_adaptive".into(),
        title: format!(
            "Adaptive pipeline controller vs static shard sweep (host parallelism {})",
            host_parallelism()
        ),
        header: vec![
            "mode".into(),
            "cores".into(),
            "shards".into(),
            "final_active".into(),
            "decisions".into(),
            "samples".into(),
            "elapsed_ms".into(),
            "samples_per_sec".into(),
        ],
        rows,
    }
}

/// Write both sweeps and the headline ratio as
/// `BENCH_stream_adaptive.json` under `dir` (hand-rolled JSON — no serde in
/// this offline workspace). Returns the path written.
pub fn write_bench_stream_adaptive_json(
    static_points: &[StreamBenchPoint],
    adaptive_points: &[AdaptiveBenchPoint],
    dir: &Path,
) -> std::io::Result<String> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    // `null` when a sweep is empty (NaN is not JSON).
    let ratio = match adaptive_vs_best_static(static_points, adaptive_points) {
        Some(ratio) => format!("{ratio:.3}"),
        None => "null".to_string(),
    };
    out.push_str(&format!("  \"adaptive_vs_best_static\": {ratio},\n"));
    match best_static(static_points) {
        Some(p) => out.push_str(&format!(
            "  \"best_static\": {{\"shards\": {}, \"samples_per_sec\": {:.1}}},\n",
            p.shards, p.samples_per_sec
        )),
        None => out.push_str("  \"best_static\": null,\n"),
    }
    match best_adaptive(adaptive_points) {
        Some(p) => out.push_str(&format!(
            "  \"best_adaptive\": {{\"allocated\": {}, \"final_active\": {}, \
             \"samples_per_sec\": {:.1}}},\n",
            p.allocated, p.final_active, p.samples_per_sec
        )),
        None => out.push_str("  \"best_adaptive\": null,\n"),
    }
    out.push_str("  \"static_points\": [\n");
    for (i, p) in static_points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cores\": {}, \"shards\": {}, \"samples\": {}, \"elapsed_ms\": {:.3}, \
             \"samples_per_sec\": {:.1}}}{}\n",
            p.cores,
            p.shards,
            p.samples,
            p.elapsed_ms,
            p.samples_per_sec,
            if i + 1 == static_points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"adaptive_points\": [\n");
    for (i, p) in adaptive_points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cores\": {}, \"allocated\": {}, \"initial_active\": {}, \
             \"final_active\": {}, \"decisions\": {}, \"samples\": {}, \"elapsed_ms\": {:.3}, \
             \"samples_per_sec\": {:.1}}}{}\n",
            p.cores,
            p.allocated,
            p.initial_active,
            p.final_active,
            p.decisions,
            p.samples,
            p.elapsed_ms,
            p.samples_per_sec,
            if i + 1 == adaptive_points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_stream_adaptive.json");
    std::fs::write(&path, out)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_adaptive_sweep_measures_and_serialises() {
        let (static_points, adaptive_points) = adaptive_sweep(4, &[1, 2], 2_000);
        assert_eq!(static_points.len(), 2);
        assert_eq!(adaptive_points.len(), 2);
        for p in &adaptive_points {
            assert_eq!(p.samples, (p.cores * 2_000) as u64, "every record decodes and merges");
            assert!(p.final_active >= 1 && p.final_active <= p.allocated);
            assert!(p.samples_per_sec > 0.0);
        }
        let ratio = adaptive_vs_best_static(&static_points, &adaptive_points).expect("ratio");
        assert!(ratio.is_finite() && ratio > 0.0);

        let dir = std::env::temp_dir().join(format!("nmo_bench_adaptive_{}", std::process::id()));
        let path =
            write_bench_stream_adaptive_json(&static_points, &adaptive_points, &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"adaptive_vs_best_static\""));
        assert!(content.contains("\"best_static\""));
        assert!(content.contains("\"adaptive_points\""));
        assert!(!content.contains("NaN"));
        let table = to_experiment(&static_points, &adaptive_points);
        assert_eq!(table.rows.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
