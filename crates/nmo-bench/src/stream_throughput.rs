//! Pipeline-throughput benchmark for the sharded streaming pipeline.
//!
//! The experiment measures the drain→decode→bus→sink spine in isolation:
//! pre-encoded SPE records for C simulated cores are decoded by W pump
//! workers (one per shard, each covering the cores that hash to its lane),
//! published as window-stamped batches on a [`nmo::ShardedBus`], and
//! consumed by W shard consumers running the *real* [`nmo::SinkShard`]
//! workers of a [`nmo::LatencySink`] and a [`nmo::RegionSink`], merged in
//! shard order at the end. Reported throughput is end-to-end samples/sec.
//!
//! The numbers seed the performance trajectory of the sharding work
//! (`BENCH_stream.json`): on a multi-core host, throughput at 8 shards on
//! the 128-core configuration should sit well above the 1-shard serial
//! pipeline; on a single-hardware-thread host the ratio degrades toward
//! 1.0× (the file records `host_parallelism` so readers can tell).
//!
//! Bench-harness code: a violated setup assumption should abort the run,
//! so panicking `expect`s are the intended failure mode here.
// nmo-lint: allow-file(no-unwrap-in-lib)

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use arch_sim::{DataSource, OpKind, TimeConv};
use nmo::sink::{ShardState, SinkShard};
use nmo::stream::{BackpressurePolicy, BatchPayload, BusRecv, SampleBatch, WindowClock};
use nmo::{
    AddressSample, AnalysisSink, Annotations, BatchPool, LatencySink, NmoConfig, Profile,
    RegionSink, ShardedBus, StreamContext,
};
use spe::packet::{decode_records, SpeRecord, SPE_RECORD_BYTES};

use crate::experiments::ExperimentResult;

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamBenchPoint {
    /// Simulated cores producing records.
    pub cores: usize,
    /// Pipeline shards (pump workers, lanes, consumers).
    pub shards: usize,
    /// Samples pushed end to end.
    pub samples: u64,
    /// Wall-clock time, milliseconds.
    pub elapsed_ms: f64,
    /// End-to-end throughput.
    pub samples_per_sec: f64,
}

/// Records decoded per simulated drain (one batch-building step).
const DRAIN_CHUNK: usize = 512;
/// Simulated window width (ns) used to stamp batches.
pub(crate) const WINDOW_NS: u64 = 100_000;

/// Pre-encode `records` SPE records for one core, timestamps ascending so
/// the stream spans many windows.
pub(crate) fn encode_core(core: usize, records: usize) -> Vec<u8> {
    let sources = [
        DataSource::L1,
        DataSource::L2,
        DataSource::Slc,
        DataSource::Dram(0),
        DataSource::RemoteDram(1),
    ];
    let mut out = Vec::with_capacity(records * SPE_RECORD_BYTES);
    for i in 0..records {
        let n = core as u64 * 131 + i as u64;
        let rec = SpeRecord::new(
            0x40_1000 + (n % 97) * 4,
            0x1000 + (n % 4096) * 64,
            (i as u64 + 1) * 1_000, // ticks ≈ ns (non-zero: a zero timestamp is an invalid record)
            40 + (n * 13) % 900,
            if n.is_multiple_of(3) { OpKind::Store } else { OpKind::Load },
            sources[(n % 5) as usize],
        );
        out.extend_from_slice(&rec.encode());
    }
    out
}

/// Decode one core's next chunk into a window-stamped batch stream,
/// publishing on the bus (the pump worker's inner loop).
pub(crate) fn pump_core_chunk(
    core: usize,
    data: &[u8],
    cursor: &mut usize,
    bus: &ShardedBus,
    pool: &BatchPool,
    clock: &WindowClock,
) -> u64 {
    let end = (*cursor + DRAIN_CHUNK * SPE_RECORD_BYTES).min(data.len());
    if *cursor >= end {
        return 0;
    }
    let chunk = &data[*cursor..end];
    *cursor = end;
    let mut published = 0u64;
    let mut samples = pool.samples();
    let mut window = None;
    for rec in decode_records(chunk) {
        let time_ns = TimeConv::apply_mmap_triple(rec.ticks, 0, 0, 1);
        let index = clock.index_of(time_ns);
        if window != Some(index) && !samples.is_empty() {
            let w = clock.window(window.expect("non-empty batch has a window"));
            published += samples.len() as u64;
            bus.publish(SampleBatch::new(
                "spe",
                Some(core),
                w,
                BatchPayload::SpeSamples { samples, loss: Default::default() },
            ));
            samples = pool.samples();
        }
        window = Some(index);
        let (is_store, latency, source) = match rec.full {
            Some(full) => (full.is_store, full.latency, full.source),
            None => (false, 0, DataSource::L1),
        };
        samples.push(AddressSample { time_ns, vaddr: rec.vaddr, core, is_store, latency, source });
    }
    if let Some(index) = window {
        if !samples.is_empty() {
            published += samples.len() as u64;
            bus.publish(SampleBatch::new(
                "spe",
                Some(core),
                clock.window(index),
                BatchPayload::SpeSamples { samples, loss: Default::default() },
            ));
        }
    }
    published
}

/// Run one configuration end to end and measure it.
pub(crate) fn run_config(cores: usize, shards: usize, records_per_core: usize) -> StreamBenchPoint {
    // Encode the input outside the measured section.
    let encoded: Vec<Vec<u8>> = (0..cores).map(|c| encode_core(c, records_per_core)).collect();
    let encoded = Arc::new(encoded);

    let annotations = Arc::new(Annotations::new());
    annotations.tag_addr("hot", 0x1000, 0x1000 + 1024 * 64);
    annotations.tag_addr("cold", 0x1000 + 1024 * 64, 0x1000 + 4096 * 64);
    let ctx = StreamContext {
        annotations,
        capacity_bytes: 1 << 30,
        bucket_ns: WINDOW_NS,
        mem_nodes: 2,
        page_bytes: 64 * 1024,
        machine: None,
    };

    let mut latency = LatencySink::new();
    latency.on_stream_start(&ctx);
    let mut regions = RegionSink::new();
    regions.on_stream_start(&ctx);
    let mut latency_shards: Vec<Box<dyn SinkShard>> = (0..shards)
        .map(|s| latency.as_shardable().expect("shardable").make_shard(s, &ctx))
        .collect();
    let mut region_shards: Vec<Box<dyn SinkShard>> = (0..shards)
        .map(|s| regions.as_shardable().expect("shardable").make_shard(s, &ctx))
        .collect();

    let bus = ShardedBus::new(shards, 1024, BackpressurePolicy::Block);
    let pool = BatchPool::new(4096);
    let clock = WindowClock::new(WINDOW_NS);

    let started = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        // Consumers: one per lane, running the real sink shards.
        let mut consumers = Vec::with_capacity(shards);
        for (shard, (mut lat, mut reg)) in
            latency_shards.drain(..).zip(region_shards.drain(..)).enumerate()
        {
            let lane = bus.lane(shard).clone();
            let pool = pool.clone();
            consumers.push(scope.spawn(move || {
                let mut consumed = 0u64;
                loop {
                    match lane.recv_timeout(Duration::from_millis(50)) {
                        BusRecv::Event(nmo::stream::BusEvent::Batch(batch)) => {
                            consumed += batch.len() as u64;
                            lat.on_batch(&batch);
                            reg.on_batch(&batch);
                            pool.recycle_batch(batch);
                        }
                        BusRecv::Event(nmo::stream::BusEvent::CloseWindow(_)) => {}
                        BusRecv::TimedOut => {}
                        BusRecv::Closed => return (consumed, lat, reg),
                    }
                }
            }));
        }
        // Pump workers: one per shard, decoding their cores round-robin.
        let mut pumps = Vec::with_capacity(shards);
        for shard in 0..shards {
            let bus = &bus;
            let pool = pool.clone();
            let encoded = encoded.clone();
            pumps.push(scope.spawn(move || {
                let mut published = 0u64;
                let my_cores: Vec<usize> = (0..cores).filter(|c| c % shards == shard).collect();
                let mut cursors = vec![0usize; my_cores.len()];
                loop {
                    let mut progressed = false;
                    for (slot, &core) in my_cores.iter().enumerate() {
                        let n = pump_core_chunk(
                            core,
                            &encoded[core],
                            &mut cursors[slot],
                            bus,
                            &pool,
                            &clock,
                        );
                        if n > 0 {
                            progressed = true;
                            published += n;
                        }
                    }
                    if !progressed {
                        return published;
                    }
                }
            }));
        }
        let published: u64 = pumps.into_iter().map(|p| p.join().expect("pump")).sum();
        bus.close_all();
        let mut consumed = 0u64;
        let mut lat_states: Vec<ShardState> = Vec::with_capacity(shards);
        let mut reg_states: Vec<ShardState> = Vec::with_capacity(shards);
        for consumer in consumers {
            let (n, lat, reg) = consumer.join().expect("consumer");
            consumed += n;
            lat_states.push(lat.finish());
            reg_states.push(reg.finish());
        }
        assert_eq!(consumed, published, "Block backpressure loses nothing");
        latency.as_shardable().expect("shardable").merge_final(lat_states);
        regions.as_shardable().expect("shardable").merge_final(reg_states);
        consumed
    });
    let elapsed = started.elapsed();

    // The merged reports must cover every sample (the merge is part of the
    // measured pipeline's correctness, not just its speed).
    let profile = Profile::empty("bench", NmoConfig::default());
    let machine = arch_sim::Machine::new(arch_sim::MachineConfig::small_test());
    match latency.finish(&machine, &profile).expect("latency report") {
        nmo::AnalysisReport::Latency(l) => assert_eq!(l.total_count(), total),
        other => panic!("expected latency report, got {other:?}"),
    }

    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    StreamBenchPoint {
        cores,
        shards,
        samples: total,
        elapsed_ms,
        samples_per_sec: total as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Sweep shard counts over core counts (the `BENCH_stream` experiment).
pub fn bench_stream_pipeline(
    core_counts: &[usize],
    shard_counts: &[usize],
    records_per_core: usize,
) -> Vec<StreamBenchPoint> {
    let mut points = Vec::new();
    for &cores in core_counts {
        for &shards in shard_counts {
            points.push(run_config(cores, shards, records_per_core));
        }
    }
    points
}

/// The default sweep: 1/32/128 cores × 1/2/4/8 shards.
pub fn default_sweep(records_per_core: usize) -> Vec<StreamBenchPoint> {
    bench_stream_pipeline(&[1, 32, 128], &[1, 2, 4, 8], records_per_core)
}

/// Throughput ratio between two shard counts at one core count (`None`
/// when either point is missing).
pub fn speedup(
    points: &[StreamBenchPoint],
    cores: usize,
    shards: usize,
    base: usize,
) -> Option<f64> {
    let at = |s: usize| {
        points.iter().find(|p| p.cores == cores && p.shards == s).map(|p| p.samples_per_sec)
    };
    Some(at(shards)? / at(base)?)
}

/// Render the sweep as an [`ExperimentResult`] table.
pub fn to_experiment(points: &[StreamBenchPoint]) -> ExperimentResult {
    ExperimentResult {
        id: "bench_stream".into(),
        title: format!(
            "Streaming-pipeline throughput vs shard count (host parallelism {})",
            host_parallelism()
        ),
        header: vec![
            "cores".into(),
            "shards".into(),
            "samples".into(),
            "elapsed_ms".into(),
            "samples_per_sec".into(),
        ],
        rows: points
            .iter()
            .map(|p| {
                vec![
                    p.cores.to_string(),
                    p.shards.to_string(),
                    p.samples.to_string(),
                    format!("{:.3}", p.elapsed_ms),
                    format!("{:.0}", p.samples_per_sec),
                ]
            })
            .collect(),
    }
}

pub(crate) fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Write the sweep as `BENCH_stream.json` under `dir` (hand-rolled JSON —
/// no serde in this offline workspace). Returns the path written.
pub fn write_bench_stream_json(points: &[StreamBenchPoint], dir: &Path) -> std::io::Result<String> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    let max_cores = points.iter().map(|p| p.cores).max().unwrap_or(0);
    // `null` when the sweep lacks the 1- or 8-shard point (NaN is not JSON).
    let ratio = match speedup(points, max_cores, 8, 1) {
        Some(ratio) => format!("{ratio:.3}"),
        None => "null".to_string(),
    };
    out.push_str(&format!("  \"speedup_8_shards_vs_1_at_{max_cores}_cores\": {ratio},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cores\": {}, \"shards\": {}, \"samples\": {}, \"elapsed_ms\": {:.3}, \
             \"samples_per_sec\": {:.1}}}{}\n",
            p.cores,
            p.shards,
            p.samples,
            p.elapsed_ms,
            p.samples_per_sec,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_stream.json");
    std::fs::write(&path, out)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_serialises() {
        let points = bench_stream_pipeline(&[1, 4], &[1, 2], 2_000);
        assert_eq!(points.len(), 4);
        for p in &points {
            let expected = (p.cores * 2_000) as u64;
            assert_eq!(p.samples, expected, "every record decodes into the sinks");
            assert!(p.samples_per_sec > 0.0);
        }
        assert!(speedup(&points, 4, 2, 1).is_some());
        assert!(speedup(&points, 4, 8, 1).is_none(), "missing shard count");

        let dir = std::env::temp_dir().join(format!("nmo_bench_stream_{}", std::process::id()));
        let path = write_bench_stream_json(&points, &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"host_parallelism\""));
        assert!(
            content.contains(": null,") && !content.contains("NaN"),
            "a sweep without the 8-shard point serialises the ratio as null: {content}"
        );
        assert!(content.contains("\"points\""));
        assert!(content.contains("\"cores\": 4"));
        let table = to_experiment(&points);
        assert_eq!(table.rows.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
