//! Trace-store benchmark (`repro --exp bench_trace`): the three numbers of
//! the indexed-binary-trace work, written to `BENCH_trace.json`.
//!
//! 1. **Encode overhead** — two numbers. The gated one is end-to-end: the
//!    same streaming PageRank session runs with and without a trace
//!    directory, best-of-trials, and the wall-clock delta is what recording
//!    costs a live profiling run (target: < 5%, CI gate: ≤ 10%). Alongside
//!    it, a worst-case stress number: the synthetic drain→decode→bus→sink
//!    pipeline of [`crate::stream_throughput`] (whose per-sample analysis
//!    is deliberately minimal) with [`nmo::TraceWriterSink`] shards riding
//!    the consumer threads, reported as a throughput delta but not gated —
//!    on a single-core host every encoded byte debits that ratio directly.
//! 2. **Storage density** — bytes per stored sample versus the naive
//!    fixed-width encoding of an [`nmo::AddressSample`] (8 time + 8 vaddr +
//!    8 core + 1 store + 2 latency + 1 source = 28 bytes), everything
//!    included (block framing, checksums, footer index, manifest).
//! 3. **Replay speedup vs re-simulation** — the headline: a recorded
//!    PageRank session is replayed through a fresh `LatencySink`
//!    sequentially and through the parallel indexed path
//!    ([`nmo::TraceReader::replay_query`]), against the wall-clock of
//!    re-running the simulation (CI gate: indexed ≥ 2x).
//!
//! Bench-harness code: a violated setup assumption should abort the run,
//! so panicking `expect`s are the intended failure mode here.
// nmo-lint: allow-file(no-unwrap-in-lib)

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arch_sim::{MachineConfig, PlacementPolicy};
use nmo::sink::SinkShard;
use nmo::stream::{BackpressurePolicy, BusRecv, WindowClock};
use nmo::trace::replay_finish;
use nmo::{
    AnalysisSink, Annotations, BatchPool, LatencySink, NmoConfig, Profile, ProfileSession,
    RegionSink, ShardedBus, StreamContext, StreamOptions, TraceQuery, TraceReader, TraceWriterSink,
};
use workloads::PageRank;

use crate::experiments::ExperimentResult;
use crate::stream_throughput::{encode_core, host_parallelism, pump_core_chunk, WINDOW_NS};

/// Bytes of the naive fixed-width `AddressSample` encoding the delta/varint
/// format is measured against: u64 time + u64 vaddr + u64 core + u8 store +
/// u16 latency + u8 source.
pub const NAIVE_SAMPLE_BYTES: u64 = 28;

/// Everything `BENCH_trace.json` reports.
#[derive(Debug, Clone)]
pub struct TraceBenchResult {
    /// Cores / shards of the synthetic encode-overhead pipeline.
    pub cores: usize,
    /// Shards (pump workers, lanes, consumers, trace segments).
    pub shards: usize,
    /// Samples pushed through the synthetic pipeline.
    pub pipeline_samples: u64,
    /// Best-of-trials throughput without the trace writer.
    pub baseline_samples_per_sec: f64,
    /// Best-of-trials throughput with the trace writer recording.
    pub recorded_samples_per_sec: f64,
    /// `1 - recorded/baseline` on the synthetic stress pipeline — the
    /// worst case, where the competing analysis work is minimal (not
    /// gated; negative means within noise).
    pub pipeline_overhead_fraction: f64,
    /// `record/resimulate - 1` on the end-to-end streaming session — what
    /// recording costs a real profiling run; this is the gated number.
    pub encode_overhead_fraction: f64,
    /// Samples stored in the synthetic pipeline's trace.
    pub stored_samples: u64,
    /// Total on-disk trace bytes (segments + manifest).
    pub trace_bytes: u64,
    /// `trace_bytes / stored_samples`.
    pub bytes_per_sample: f64,
    /// `NAIVE_SAMPLE_BYTES / bytes_per_sample`.
    pub compression_ratio_vs_fixed_width: f64,
    /// Wall-clock of re-running the PageRank simulation, milliseconds.
    pub resimulate_ms: f64,
    /// Wall-clock of the recorded session (simulation + trace writing).
    pub record_ms: f64,
    /// Sequential replay of the stored session trace, milliseconds.
    pub sequential_replay_ms: f64,
    /// Parallel indexed replay (`replay_query`, all segments), milliseconds.
    pub indexed_replay_ms: f64,
    /// Replay worker threads of the indexed path (= session segments).
    pub replay_segments: usize,
    /// `resimulate_ms / sequential_replay_ms`.
    pub sequential_speedup_vs_resimulate: f64,
    /// `resimulate_ms / indexed_replay_ms` — the headline number.
    pub indexed_speedup_vs_resimulate: f64,
}

/// Run the synthetic pipeline once; when `trace_dir` is set, a
/// `TraceWriterSink` shard rides every consumer thread and the finished
/// trace is left at `trace_dir`. Returns (samples, elapsed).
fn run_pipeline(
    cores: usize,
    shards: usize,
    encoded: &Arc<Vec<Vec<u8>>>,
    trace_dir: Option<&Path>,
) -> (u64, Duration) {
    let annotations = Arc::new(Annotations::new());
    let ctx = StreamContext {
        annotations,
        capacity_bytes: 1 << 30,
        bucket_ns: WINDOW_NS,
        mem_nodes: 2,
        page_bytes: 64 * 1024,
        machine: None,
    };

    // The live-analysis half mirrors `stream_throughput::run_config`:
    // a latency histogram and a region attributor per consumer thread.
    let mut latency = LatencySink::new();
    latency.on_stream_start(&ctx);
    let mut regions = RegionSink::new();
    regions.on_stream_start(&ctx);
    let mut analysis_shards: Vec<Vec<Box<dyn SinkShard>>> = (0..shards)
        .map(|s| {
            vec![
                latency.as_shardable().expect("shardable").make_shard(s, &ctx),
                regions.as_shardable().expect("shardable").make_shard(s, &ctx),
            ]
        })
        .collect();
    let mut tracer = trace_dir.map(|dir| {
        std::fs::remove_dir_all(dir).ok();
        let mut t = TraceWriterSink::new(dir);
        t.on_stream_start(&ctx);
        t
    });
    let mut trace_shards: Vec<Option<Box<dyn SinkShard>>> = match tracer.as_mut() {
        Some(t) => {
            let sh = t.as_shardable().expect("trace writer is shardable");
            (0..shards).map(|s| Some(sh.make_shard(s, &ctx))).collect()
        }
        None => (0..shards).map(|_| None).collect(),
    };

    let records_per_core = encoded[0].len() / spe::packet::SPE_RECORD_BYTES;
    let last_window = WindowClock::new(WINDOW_NS).index_of(records_per_core as u64 * 1_000);
    let bus = ShardedBus::new(shards, 1024, BackpressurePolicy::Block);
    let pool = BatchPool::new(4096);
    let clock = WindowClock::new(WINDOW_NS);

    let started = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let mut consumers = Vec::with_capacity(shards);
        for (shard, (mut workers, mut tra)) in
            analysis_shards.drain(..).zip(trace_shards.drain(..)).enumerate()
        {
            let lane = bus.lane(shard).clone();
            let pool = pool.clone();
            consumers.push(scope.spawn(move || {
                let mut consumed = 0u64;
                loop {
                    match lane.recv_timeout(Duration::from_millis(50)) {
                        BusRecv::Event(nmo::stream::BusEvent::Batch(batch)) => {
                            consumed += batch.len() as u64;
                            for w in workers.iter_mut() {
                                w.on_batch(&batch);
                            }
                            if let Some(t) = tra.as_mut() {
                                t.on_batch(&batch);
                            }
                            pool.recycle_batch(batch);
                        }
                        BusRecv::Event(nmo::stream::BusEvent::CloseWindow(_)) => {}
                        BusRecv::TimedOut => {}
                        BusRecv::Closed => break,
                    }
                }
                // Window closes, in order, to every sink's shard (the trace
                // needs them recorded for replay to merge windows).
                for w in 0..=last_window {
                    let window = clock.window(w);
                    for worker in workers.iter_mut() {
                        worker.on_window_close(window);
                    }
                    if let Some(t) = tra.as_mut() {
                        t.on_window_close(window);
                    }
                }
                (consumed, workers, tra)
            }));
        }
        let mut pumps = Vec::with_capacity(shards);
        for shard in 0..shards {
            let bus = &bus;
            let pool = pool.clone();
            let encoded = Arc::clone(encoded);
            pumps.push(scope.spawn(move || {
                let mut published = 0u64;
                let my_cores: Vec<usize> = (0..cores).filter(|c| c % shards == shard).collect();
                let mut cursors = vec![0usize; my_cores.len()];
                loop {
                    let mut progressed = false;
                    for (slot, &core) in my_cores.iter().enumerate() {
                        let n = pump_core_chunk(
                            core,
                            &encoded[core],
                            &mut cursors[slot],
                            bus,
                            &pool,
                            &clock,
                        );
                        if n > 0 {
                            progressed = true;
                            published += n;
                        }
                    }
                    if !progressed {
                        return published;
                    }
                }
            }));
        }
        let published: u64 = pumps.into_iter().map(|p| p.join().expect("pump")).sum();
        bus.close_all();
        let mut consumed = 0u64;
        let mut lat_states = Vec::with_capacity(shards);
        let mut reg_states = Vec::with_capacity(shards);
        let mut trace_states = Vec::with_capacity(shards);
        for consumer in consumers {
            let (n, mut workers, tra) = consumer.join().expect("consumer");
            consumed += n;
            let reg = workers.pop().expect("region worker");
            let lat = workers.pop().expect("latency worker");
            lat_states.push(lat.finish());
            reg_states.push(reg.finish());
            if let Some(t) = tra {
                trace_states.push(t.finish());
            }
        }
        assert_eq!(consumed, published, "Block backpressure loses nothing");
        latency.as_shardable().expect("shardable").merge_final(lat_states);
        regions.as_shardable().expect("shardable").merge_final(reg_states);
        if let Some(t) = tracer.as_mut() {
            t.as_shardable().expect("shardable").merge_final(trace_states);
        }
        consumed
    });
    let elapsed = started.elapsed();

    if let Some(t) = tracer {
        // Writes the manifest so the trace is openable.
        let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(t)];
        replay_finish(&mut sinks).expect("trace manifest");
    }
    (total, elapsed)
}

/// On-disk size of every file in the trace directory.
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.filter_map(|e| e.ok()).filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum()
        })
        .unwrap_or(0)
}

/// The PageRank session the replay arm records and re-simulates; `scale`
/// grows the graph with the records-per-core knob of the other benches.
fn replay_session(scale: usize, trace_dir: Option<&PathBuf>) -> ProfileSession {
    let vertices = (scale * 2).next_power_of_two().clamp(1 << 10, 1 << 14);
    let mut builder = ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.5,
        }))
        .config(NmoConfig::paper_default(100))
        .threads(4)
        .sink(LatencySink::default())
        .stream_options(StreamOptions { window_ns: 100_000, shards: 4, ..StreamOptions::default() })
        .workload(Box::new(PageRank::new(vertices, 8, 2)));
    if let Some(dir) = trace_dir {
        builder = builder.trace_dir(dir.clone());
    }
    builder.build().expect("session builds")
}

fn latency_report_debug(profile: &Profile) -> String {
    let rec = profile.analyses.iter().find(|r| r.sink == "latency").expect("live latency report");
    format!("{:?}", rec.report)
}

/// Run the full trace benchmark. `records_per_core` sizes the synthetic
/// pipeline (and, scaled, the PageRank replay arm); `trials` is the
/// best-of count for the overhead measurement.
pub fn bench_trace(
    cores: usize,
    shards: usize,
    records_per_core: usize,
    trials: usize,
) -> TraceBenchResult {
    let encoded: Arc<Vec<Vec<u8>>> =
        Arc::new((0..cores).map(|c| encode_core(c, records_per_core)).collect());
    let trace_dir =
        std::env::temp_dir().join(format!("nmo_bench_trace_pipe_{}", std::process::id()));

    // Arm 1: encode overhead, best-of-`trials` per configuration.
    let mut baseline_best = Duration::MAX;
    let mut recorded_best = Duration::MAX;
    let mut samples = 0u64;
    for _ in 0..trials.max(1) {
        let (n, t) = run_pipeline(cores, shards, &encoded, None);
        samples = n;
        baseline_best = baseline_best.min(t);
        let (m, t) = run_pipeline(cores, shards, &encoded, Some(&trace_dir));
        assert_eq!(m, n, "both arms push the identical stream");
        recorded_best = recorded_best.min(t);
    }
    let baseline_rate = samples as f64 / baseline_best.as_secs_f64().max(1e-9);
    let recorded_rate = samples as f64 / recorded_best.as_secs_f64().max(1e-9);
    let pipeline_overhead = 1.0 - recorded_rate / baseline_rate;

    // Arm 2: storage density of the recorded pipeline trace.
    let reader = TraceReader::open(&trace_dir).expect("open pipeline trace");
    let summary = reader.summary();
    assert_eq!(summary.samples, samples, "every sample is stored");
    let trace_bytes = dir_bytes(&trace_dir);
    let bytes_per_sample = trace_bytes as f64 / summary.samples.max(1) as f64;

    // Arm 3: replay vs re-simulation on a recorded PageRank session, and
    // the gated end-to-end encode overhead (record vs plain, best-of-trials
    // with the arms interleaved so drift hits both equally).
    let session_dir =
        std::env::temp_dir().join(format!("nmo_bench_trace_sess_{}", std::process::id()));
    let mut record_ms = f64::MAX;
    let mut resimulate_ms = f64::MAX;
    let mut live_latency = String::new();
    for _ in 0..trials.max(1) {
        std::fs::remove_dir_all(&session_dir).ok();
        let started = Instant::now();
        let recorded_profile = replay_session(records_per_core, Some(&session_dir))
            .run_streaming()
            .expect("recorded run");
        record_ms = record_ms.min(started.elapsed().as_secs_f64() * 1e3);
        live_latency = latency_report_debug(&recorded_profile);

        let started = Instant::now();
        let resim_profile =
            replay_session(records_per_core, None).run_streaming().expect("re-simulation");
        resimulate_ms = resimulate_ms.min(started.elapsed().as_secs_f64() * 1e3);
        drop(resim_profile);
    }
    let encode_overhead = record_ms / resimulate_ms.max(1e-9) - 1.0;

    let reader = TraceReader::open(&session_dir).expect("open session trace");
    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let started = Instant::now();
    reader.replay(&mut sinks).expect("sequential replay");
    let sequential_replay_ms = started.elapsed().as_secs_f64() * 1e3;
    let records = replay_finish(&mut sinks).expect("replay report");
    assert_eq!(
        format!("{:?}", records[0].report),
        live_latency,
        "sequential replay must be bit-for-bit the live run"
    );

    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let started = Instant::now();
    reader.replay_query(&TraceQuery::all(), &mut sinks).expect("indexed replay");
    let indexed_replay_ms = started.elapsed().as_secs_f64() * 1e3;
    let records = replay_finish(&mut sinks).expect("indexed report");
    assert_eq!(
        format!("{:?}", records[0].report),
        live_latency,
        "indexed replay must match the live run too"
    );
    let replay_segments = reader.shards();

    std::fs::remove_dir_all(&trace_dir).ok();
    std::fs::remove_dir_all(&session_dir).ok();

    TraceBenchResult {
        cores,
        shards,
        pipeline_samples: samples,
        baseline_samples_per_sec: baseline_rate,
        recorded_samples_per_sec: recorded_rate,
        pipeline_overhead_fraction: pipeline_overhead,
        encode_overhead_fraction: encode_overhead,
        stored_samples: summary.samples,
        trace_bytes,
        bytes_per_sample,
        compression_ratio_vs_fixed_width: NAIVE_SAMPLE_BYTES as f64 / bytes_per_sample.max(1e-9),
        resimulate_ms,
        record_ms,
        sequential_replay_ms,
        indexed_replay_ms,
        replay_segments,
        sequential_speedup_vs_resimulate: resimulate_ms / sequential_replay_ms.max(1e-9),
        indexed_speedup_vs_resimulate: resimulate_ms / indexed_replay_ms.max(1e-9),
    }
}

/// Render the result as an [`ExperimentResult`] table.
pub fn to_experiment(r: &TraceBenchResult) -> ExperimentResult {
    ExperimentResult {
        id: "bench_trace".into(),
        title: format!(
            "Trace store: encode overhead, density, replay speedup (host parallelism {})",
            host_parallelism()
        ),
        header: vec!["metric".into(), "value".into()],
        rows: vec![
            vec!["pipeline cores x shards".into(), format!("{} x {}", r.cores, r.shards)],
            vec!["pipeline samples".into(), r.pipeline_samples.to_string()],
            vec!["baseline samples/s".into(), format!("{:.0}", r.baseline_samples_per_sec)],
            vec!["recorded samples/s".into(), format!("{:.0}", r.recorded_samples_per_sec)],
            vec![
                "stress pipeline overhead".into(),
                format!("{:.2}%", r.pipeline_overhead_fraction * 100.0),
            ],
            vec![
                "live-run encode overhead".into(),
                format!("{:.2}%", r.encode_overhead_fraction * 100.0),
            ],
            vec!["trace bytes/sample".into(), format!("{:.2}", r.bytes_per_sample)],
            vec![
                "compression vs fixed-width".into(),
                format!("{:.2}x", r.compression_ratio_vs_fixed_width),
            ],
            vec!["re-simulate".into(), format!("{:.1} ms", r.resimulate_ms)],
            vec!["sequential replay".into(), format!("{:.1} ms", r.sequential_replay_ms)],
            vec![
                "indexed replay".into(),
                format!("{:.1} ms ({} workers)", r.indexed_replay_ms, r.replay_segments),
            ],
            vec![
                "indexed speedup vs re-simulate".into(),
                format!("{:.1}x", r.indexed_speedup_vs_resimulate),
            ],
        ],
    }
}

/// Write `BENCH_trace.json` under `dir` (hand-rolled JSON — no serde in
/// this offline workspace). Returns the path written.
pub fn write_bench_trace_json(r: &TraceBenchResult, dir: &Path) -> std::io::Result<String> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    out.push_str(&format!(
        "  \"encode\": {{\"cores\": {}, \"shards\": {}, \"samples\": {}, \
         \"baseline_samples_per_sec\": {:.1}, \"recorded_samples_per_sec\": {:.1}, \
         \"pipeline_overhead_fraction\": {:.4}, \"record_ms\": {:.3}, \
         \"resimulate_ms\": {:.3}, \"encode_overhead_fraction\": {:.4}}},\n",
        r.cores,
        r.shards,
        r.pipeline_samples,
        r.baseline_samples_per_sec,
        r.recorded_samples_per_sec,
        r.pipeline_overhead_fraction,
        r.record_ms,
        r.resimulate_ms,
        r.encode_overhead_fraction,
    ));
    out.push_str(&format!(
        "  \"storage\": {{\"samples\": {}, \"trace_bytes\": {}, \"bytes_per_sample\": {:.3}, \
         \"naive_bytes_per_sample\": {}, \"compression_ratio_vs_fixed_width\": {:.3}}},\n",
        r.stored_samples,
        r.trace_bytes,
        r.bytes_per_sample,
        NAIVE_SAMPLE_BYTES,
        r.compression_ratio_vs_fixed_width,
    ));
    out.push_str(&format!(
        "  \"replay\": {{\"resimulate_ms\": {:.3}, \"record_ms\": {:.3}, \
         \"sequential_replay_ms\": {:.3}, \"indexed_replay_ms\": {:.3}, \
         \"replay_segments\": {}, \"sequential_speedup_vs_resimulate\": {:.3}, \
         \"indexed_speedup_vs_resimulate\": {:.3}}}\n",
        r.resimulate_ms,
        r.record_ms,
        r.sequential_replay_ms,
        r.indexed_replay_ms,
        r.replay_segments,
        r.sequential_speedup_vs_resimulate,
        r.indexed_speedup_vs_resimulate,
    ));
    out.push_str("}\n");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_trace.json");
    std::fs::write(&path, out)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bench_measures_and_serialises() {
        let r = bench_trace(4, 2, 2_000, 1);
        assert_eq!(r.pipeline_samples, 8_000);
        assert_eq!(r.stored_samples, 8_000);
        assert!(r.baseline_samples_per_sec > 0.0 && r.recorded_samples_per_sec > 0.0);
        assert!(r.bytes_per_sample > 0.0 && r.trace_bytes > 0);
        assert!(r.sequential_speedup_vs_resimulate > 0.0);
        assert!(r.indexed_speedup_vs_resimulate > 0.0);

        let dir = std::env::temp_dir().join(format!("nmo_bench_trace_{}", std::process::id()));
        let path = write_bench_trace_json(&r, &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"host_parallelism\""));
        assert!(content.contains("\"encode_overhead_fraction\""));
        assert!(content.contains("\"indexed_speedup_vs_resimulate\""));
        assert!(!content.contains("NaN"));
        let table = to_experiment(&r);
        assert!(table.rows.len() >= 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
