//! Criterion benches for the NMO hot path: SPE record encode/decode, the
//! aux-buffer produce/consume cycle, and the monitor thread's incremental
//! `decode_records` drain. These are the operations whose cost the paper's
//! overhead model charges per sample, and the drain throughput bounds how
//! fast the monitor thread can keep up with the profiled cores — guard it
//! before and after data-source/topology changes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use arch_sim::{DataSource, OpKind};
use perf_sub::{AuxBuffer, MetadataPage};
use spe::packet::{decode_nmo_fields, decode_records, SpeRecord, SPE_RECORD_BYTES};

fn bench_packet_codec(c: &mut Criterion) {
    let record = SpeRecord::new(
        0x40_1000,
        0xffff_0000_4242,
        123_456_789,
        333,
        OpKind::Load,
        DataSource::Dram(0),
    );
    let bytes = record.encode();

    let mut group = c.benchmark_group("spe_packet");
    group.throughput(Throughput::Bytes(SPE_RECORD_BYTES as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(record).encode()));
    group.bench_function("decode_full", |b| b.iter(|| SpeRecord::decode(black_box(&bytes))));
    group.bench_function("decode_nmo_fields", |b| b.iter(|| decode_nmo_fields(black_box(&bytes))));
    group.finish();
}

fn bench_aux_roundtrip(c: &mut Criterion) {
    let meta = MetadataPage::default();
    let aux = AuxBuffer::new(16, 64 * 1024).unwrap();
    let record = SpeRecord::new(1, 2, 3, 4, OpKind::Store, DataSource::L2).encode();

    let mut group = c.benchmark_group("aux_buffer");
    group.throughput(Throughput::Bytes(SPE_RECORD_BYTES as u64));
    group.bench_function("write_read_release", |b| {
        b.iter(|| {
            let off = aux.write(black_box(&record), &meta).expect("space");
            let data = aux.read_at(off, SPE_RECORD_BYTES as u64);
            aux.advance_tail(off + SPE_RECORD_BYTES as u64, &meta);
            black_box(data);
        })
    });
    group.finish();
}

/// A watermark's worth of records (half of a 1 MiB aux buffer) mixing every
/// data-source class the tiered machine produces, plus some corruption —
/// the realistic shape of one monitor-thread drain.
fn drain_batch(records: usize, corrupt_every: usize) -> Vec<u8> {
    let sources = [
        DataSource::L1,
        DataSource::L2,
        DataSource::Slc,
        DataSource::Dram(0),
        DataSource::RemoteDram(1),
    ];
    let mut batch = Vec::with_capacity(records * SPE_RECORD_BYTES);
    for i in 0..records {
        let rec = SpeRecord::new(
            0x40_1000 + (i as u64 % 7) * 0x100,
            0xffff_0000_4242 + i as u64 * 64,
            99 + i as u64,
            50 + (i as u64 % 900),
            if i % 3 == 0 { OpKind::Store } else { OpKind::Load },
            sources[i % sources.len()],
        );
        let mut bytes = rec.encode();
        if corrupt_every > 0 && i % corrupt_every == 0 {
            bytes[30] = 0x00; // mangled vaddr header: the skip path
        }
        batch.extend_from_slice(&bytes);
    }
    batch
}

fn bench_drain_batch(c: &mut Criterion) {
    let batch = drain_batch(8192, 0);
    let mut group = c.benchmark_group("drain");
    group.throughput(Throughput::Bytes(batch.len() as u64));
    group.bench_function("decode_512KiB_batch", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for chunk in batch.chunks_exact(SPE_RECORD_BYTES) {
                if decode_nmo_fields(black_box(chunk)).is_some() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    group.finish();
}

/// The monitor-thread hot path as the streaming backend actually runs it:
/// the incremental `decode_records` iterator (NMO-field validation, skip
/// accounting, opportunistic full decode including the data-source packet).
fn bench_decode_records(c: &mut Criterion) {
    let clean = drain_batch(8192, 0);
    let lossy = drain_batch(8192, 16); // ~6% corrupted records

    let mut group = c.benchmark_group("decode_records");
    group.throughput(Throughput::Bytes(clean.len() as u64));
    group.bench_function("clean_512KiB", |b| {
        b.iter(|| {
            let mut decoder = decode_records(black_box(&clean));
            let mut full = 0u64;
            for rec in decoder.by_ref() {
                full += u64::from(rec.full.is_some());
            }
            black_box((full, decoder.skipped()))
        })
    });
    group.bench_function("lossy_512KiB", |b| {
        b.iter(|| {
            let mut decoder = decode_records(black_box(&lossy));
            let count = decoder.by_ref().count() as u64;
            black_box((count, decoder.skipped()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_packet_codec,
    bench_aux_roundtrip,
    bench_drain_batch,
    bench_decode_records
);
criterion_main!(benches);
