//! Criterion benches for the NMO hot path: SPE record encode/decode and the
//! aux-buffer produce/consume cycle. These are the operations whose cost the
//! paper's overhead model charges per sample.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use arch_sim::{MemLevel, OpKind};
use perf_sub::{AuxBuffer, MetadataPage};
use spe::packet::{decode_nmo_fields, SpeRecord, SPE_RECORD_BYTES};

fn bench_packet_codec(c: &mut Criterion) {
    let record =
        SpeRecord::new(0x40_1000, 0xffff_0000_4242, 123_456_789, 333, OpKind::Load, MemLevel::Dram);
    let bytes = record.encode();

    let mut group = c.benchmark_group("spe_packet");
    group.throughput(Throughput::Bytes(SPE_RECORD_BYTES as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(record).encode()));
    group.bench_function("decode_full", |b| b.iter(|| SpeRecord::decode(black_box(&bytes))));
    group.bench_function("decode_nmo_fields", |b| b.iter(|| decode_nmo_fields(black_box(&bytes))));
    group.finish();
}

fn bench_aux_roundtrip(c: &mut Criterion) {
    let meta = MetadataPage::default();
    let aux = AuxBuffer::new(16, 64 * 1024).unwrap();
    let record = SpeRecord::new(1, 2, 3, 4, OpKind::Store, MemLevel::L2).encode();

    let mut group = c.benchmark_group("aux_buffer");
    group.throughput(Throughput::Bytes(SPE_RECORD_BYTES as u64));
    group.bench_function("write_read_release", |b| {
        b.iter(|| {
            let off = aux.write(black_box(&record), &meta).expect("space");
            let data = aux.read_at(off, SPE_RECORD_BYTES as u64);
            aux.advance_tail(off + SPE_RECORD_BYTES as u64, &meta);
            black_box(data);
        })
    });
    group.finish();
}

fn bench_drain_batch(c: &mut Criterion) {
    // Decode a full watermark's worth of records (half of a 1 MiB aux buffer),
    // the unit of work the monitor thread performs per interrupt.
    let record = SpeRecord::new(0x40_1000, 0xffff_0000_4242, 99, 50, OpKind::Load, MemLevel::Slc);
    let bytes = record.encode();
    let batch: Vec<u8> =
        std::iter::repeat_with(|| bytes.iter().copied()).take(8192).flatten().collect();

    let mut group = c.benchmark_group("drain");
    group.throughput(Throughput::Bytes(batch.len() as u64));
    group.bench_function("decode_512KiB_batch", |b| {
        b.iter(|| {
            let mut ok = 0u64;
            for chunk in batch.chunks_exact(SPE_RECORD_BYTES) {
                if decode_nmo_fields(black_box(chunk)).is_some() {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_packet_codec, bench_aux_roundtrip, bench_drain_batch);
criterion_main!(benches);
