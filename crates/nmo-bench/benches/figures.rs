//! Criterion benches that exercise reduced-size versions of the paper's
//! figure workloads end to end (workload + NMO profiler + analysis). One
//! bench per evaluation figure family, at `Scale::tiny` so `cargo bench`
//! completes quickly; the `repro` binary runs the full-size sweeps.

use criterion::{criterion_group, criterion_main, Criterion};

use nmo::NmoConfig;
use nmo_bench::experiments;
use nmo_bench::harness::{baseline_run, measure, profiled_run, Scale, WorkloadKind};

fn bench_fig2_fig3(c: &mut Criterion) {
    let scale = Scale::tiny();
    c.bench_function("fig2_fig3_cloud_capacity_bandwidth", |b| {
        b.iter(|| experiments::fig2_fig3_cloud(&scale, 2).expect("fig2/3"))
    });
}

fn bench_fig4_fig6_scatter(c: &mut Criterion) {
    let scale = Scale::tiny();
    c.bench_function("fig4_stream_scatter", |b| {
        b.iter(|| experiments::fig4_stream_scatter(&scale, 512).expect("fig4"))
    });
    c.bench_function("fig5_fig6_cfd_scatter", |b| {
        b.iter(|| experiments::fig5_fig6_cfd_scatter(&scale, 512, 4).expect("fig5/6"))
    });
}

fn bench_fig7_fig8_period_point(c: &mut Criterion) {
    let scale = Scale::tiny();
    let baseline = baseline_run(WorkloadKind::Stream, &scale, 2).expect("baseline");
    c.bench_function("fig7_fig8_one_period_point_stream", |b| {
        b.iter(|| {
            measure(WorkloadKind::Stream, &scale, 2, NmoConfig::paper_default(1000), &baseline)
                .expect("measure")
        })
    });
    let baseline_bfs = baseline_run(WorkloadKind::Bfs, &scale, 2).expect("baseline");
    c.bench_function("fig7_fig8_one_period_point_bfs", |b| {
        b.iter(|| {
            measure(WorkloadKind::Bfs, &scale, 2, NmoConfig::paper_default(1000), &baseline_bfs)
                .expect("measure")
        })
    });
}

fn bench_fig9_fig11_sweep_point(c: &mut Criterion) {
    let scale = Scale::tiny();
    c.bench_function("fig9_aux_point_stream_profiled_run", |b| {
        b.iter(|| {
            let config = NmoConfig { auxbufsize_mib: 1, ..NmoConfig::paper_default(2048) };
            profiled_run(WorkloadKind::Stream, &scale, 4, config).expect("profiled run")
        })
    });
    c.bench_function("fig10_thread_point_stream_profiled_run", |b| {
        b.iter(|| {
            profiled_run(WorkloadKind::Stream, &scale, 8, NmoConfig::paper_default(4096))
                .expect("profiled run")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2_fig3, bench_fig4_fig6_scatter, bench_fig7_fig8_period_point, bench_fig9_fig11_sweep_point
}
criterion_main!(benches);
