//! Criterion benches for the machine substrate: cache-hierarchy walks and the
//! end-to-end engine throughput with and without an attached SPE observer.
//! The delta between the two is the simulator-side cost of profiling, which
//! bounds how large the figure sweeps can be.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use arch_sim::{Cache, CacheLevelConfig, Machine, MachineConfig};
use nmo::{NmoConfig, SampleBackend, SpeBackend};

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheLevelConfig {
        size_bytes: 64 * 1024,
        line_bytes: 64,
        ways: 4,
        latency_cycles: 4,
        occupancy_cycles: 1,
    };
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_hit", |b| {
        let mut cache = Cache::new(&cfg);
        cache.access(0x1000, false);
        b.iter(|| cache.access(black_box(0x1000), false))
    });
    group.bench_function("streaming_miss", |b| {
        let mut cache = Cache::new(&cfg);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            cache.access(black_box(addr), false)
        })
    });
    group.finish();
}

fn run_engine_ops(machine: &Machine, n: u64) -> u64 {
    let region = machine.vm().regions().first().cloned().unwrap();
    let mut engine = machine.attach(0).unwrap();
    let span = region.len / 8;
    for i in 0..n {
        engine.load(region.start + (i % span) * 8, 8);
    }
    engine.now_cycles()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    const OPS: u64 = 100_000;
    group.throughput(Throughput::Elements(OPS));

    group.bench_function("load_stream_unprofiled", |b| {
        let machine = Machine::new(MachineConfig::ampere_altra_max());
        machine.alloc("data", 8 << 20).unwrap();
        b.iter(|| run_engine_ops(&machine, OPS))
    });

    group.bench_function("load_stream_with_spe", |b| {
        let machine = Machine::new(MachineConfig::ampere_altra_max());
        machine.alloc("data", 8 << 20).unwrap();
        let mut backend = SpeBackend::new();
        let observers = backend
            .start(&machine, &[0], &NmoConfig::paper_default(4096))
            .expect("spe backend start");
        for co in observers {
            machine.set_observer(co.core, co.observer).expect("attach observer");
        }
        b.iter(|| run_engine_ops(&machine, OPS));
        let _ = machine.take_observer(0);
        let _ = backend.stop(&machine);
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_engine);
criterion_main!(benches);
