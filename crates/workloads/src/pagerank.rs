//! Page Rank — the CloudSuite Graph Analytics benchmark.
//!
//! The paper runs Page Rank in a Docker/Hadoop setup whose interesting
//! memory behaviour (for NMO) is: a large graph is loaded at the beginning —
//! memory usage climbs quickly to its saturation point and bandwidth peaks
//! early (Figures 2 and 3, right) — followed by iterative rank computation
//! with lower, fluctuating bandwidth. This re-implementation reproduces that
//! structure directly: a *load* phase that materialises (first-touches) the
//! CSR graph and rank arrays, then pull-style power iterations.

use arch_sim::Machine;
use nmo::{Annotations, NmoError};

use crate::generators::{rmat_graph, CsrGraph};
use crate::{chunk_range, parallel_on_cores, pc, Workload, WorkloadReport};

/// Damping factor used by the power iteration.
pub const DAMPING: f64 = 0.85;

struct Regions {
    offsets: arch_sim::Region,
    edges: arch_sim::Region,
    ranks: arch_sim::Region,
    ranks_next: arch_sim::Region,
    out_degree: arch_sim::Region,
}

/// The PageRank benchmark.
pub struct PageRank {
    graph: CsrGraph,
    iterations: usize,
    ranks: Vec<f64>,
    ranks_next: Vec<f64>,
    /// Out-degree of the *source* of each edge, pre-inverted for the pull model.
    out_degree: Vec<u32>,
    regions: Option<Regions>,
}

impl PageRank {
    /// Create a PageRank benchmark on an RMAT graph with `num_vertices`
    /// (rounded to a power of two) and `avg_degree`, iterated `iterations`
    /// times. The generated edge direction is interpreted as "in-edge" so the
    /// gather loop reads the rank of each in-neighbour.
    pub fn new(num_vertices: usize, avg_degree: usize, iterations: usize) -> Self {
        let graph = rmat_graph(num_vertices, avg_degree, 0x9A6E);
        let n = graph.num_vertices;
        // Out-degree of vertex u = number of edge lists containing u. Compute
        // by counting occurrences of u as a target of the in-edge CSR.
        let mut out_degree = vec![0u32; n];
        for &t in &graph.edges {
            out_degree[t as usize] += 1;
        }
        // Avoid division by zero for rank sinks.
        for d in &mut out_degree {
            if *d == 0 {
                *d = 1;
            }
        }
        PageRank {
            graph,
            iterations,
            ranks: vec![1.0 / n as f64; n],
            ranks_next: vec![0.0; n],
            out_degree,
            regions: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices
    }

    /// Current rank vector.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError> {
        let n = self.graph.num_vertices as u64;
        let m = self.graph.num_edges() as u64;
        let offsets = machine.alloc("offsets", (n + 1) * 4)?;
        let edges = machine.alloc("edges", m * 4)?;
        let ranks = machine.alloc("ranks", n * 8)?;
        let ranks_next = machine.alloc("ranks_next", n * 8)?;
        let out_degree = machine.alloc("out_degree", n * 4)?;
        annotations.tag_addr("offsets", offsets.start, offsets.end());
        annotations.tag_addr("edges", edges.start, edges.end());
        annotations.tag_addr("ranks", ranks.start, ranks.end());
        annotations.tag_addr("ranks_next", ranks_next.start, ranks_next.end());
        annotations.tag_addr("out_degree", out_degree.start, out_degree.end());
        self.regions = Some(Regions { offsets, edges, ranks, ranks_next, out_degree });
        Ok(())
    }

    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError> {
        let regions = self
            .regions
            .as_ref()
            .ok_or_else(|| NmoError::Workload("pagerank: run() called before setup()".into()))?;
        let n = self.graph.num_vertices;
        let threads = cores.len();
        let graph = &self.graph;
        let out_degree = &self.out_degree;
        let (ro, re, rr, rn, rd) = (
            regions.offsets.start,
            regions.edges.start,
            regions.ranks.start,
            regions.ranks_next.start,
            regions.out_degree.start,
        );

        // Phase 1: "load graph" — stream over the whole graph once, which
        // first-touches every page (memory usage climbs to saturation) and
        // produces the early bandwidth peak of Figure 3.
        annotations.start("load graph", machine.makespan_ns());
        let load_result = parallel_on_cores(machine, cores, |tid, engine| {
            let vrange = chunk_range(n, threads, tid);
            for v in vrange {
                engine.store_at(pc::PR_LOAD, ro + (v * 4) as u64, 4);
                engine.store_at(pc::PR_LOAD, rr + (v * 8) as u64, 8);
                engine.store_at(pc::PR_LOAD, rn + (v * 8) as u64, 8);
                engine.store_at(pc::PR_LOAD, rd + (v * 4) as u64, 4);
                let e0 = graph.offsets[v] as usize;
                let e1 = graph.offsets[v + 1] as usize;
                for e in e0..e1 {
                    engine.store_at(pc::PR_LOAD, re + (e * 4) as u64, 4);
                }
                engine.cpu_work(2);
            }
        });
        annotations.stop(machine.makespan_ns());
        load_result?;

        // Phase 2: power iterations (pull model).
        let ranks_ptr = SendPtr(self.ranks.as_mut_ptr());
        let next_ptr = SendPtr(self.ranks_next.as_mut_ptr());
        annotations.start("iterate", machine.makespan_ns());
        for _it in 0..self.iterations {
            let iter_result = parallel_on_cores(machine, cores, |tid, engine| {
                let vrange = chunk_range(n, threads, tid);
                let ranks = ranks_ptr;
                let next = next_ptr;
                for v in vrange {
                    engine.load_at(pc::PR_GATHER, ro + (v * 4) as u64, 4);
                    engine.load_at(pc::PR_GATHER, ro + ((v + 1) * 4) as u64, 4);
                    let mut acc = 0.0f64;
                    let e0 = graph.offsets[v] as usize;
                    for (j, &u) in graph.neighbors(v).iter().enumerate() {
                        let u = u as usize;
                        engine.load_at(pc::PR_GATHER, re + ((e0 + j) * 4) as u64, 4);
                        engine.load_at(pc::PR_GATHER, rr + (u * 8) as u64, 8);
                        engine.load_at(pc::PR_GATHER, rd + (u * 4) as u64, 4);
                        acc += unsafe { *ranks.0.add(u) } / out_degree[u] as f64;
                    }
                    engine.store_at(pc::PR_GATHER, rn + (v * 8) as u64, 8);
                    unsafe { *next.0.add(v) = (1.0 - DAMPING) / n as f64 + DAMPING * acc };
                    engine.flops((2 * graph.degree(v) + 3) as u64);
                    engine.cpu_work(4);
                }
            });
            iter_result?;
            // Swap rank buffers on the host (the simulated arrays swap roles
            // implicitly; accesses alternate between the two tagged regions).
            std::mem::swap(&mut self.ranks, &mut self.ranks_next);
        }
        annotations.stop(machine.makespan_ns());

        let counters = machine.counters();
        Ok(WorkloadReport {
            mem_ops: counters.mem_access,
            flops: counters.flops,
            checksum: self.ranks.iter().sum::<f64>(),
        })
    }

    fn verify(&self) -> bool {
        // Ranks must stay non-negative and bounded. The plain power iteration
        // leaks mass at rank sinks (dangling vertices are common in RMAT
        // graphs), so the sum settles somewhere below 1 rather than at 1.
        let sum: f64 = self.ranks.iter().sum();
        self.ranks.iter().all(|r| *r >= 0.0 && r.is_finite()) && sum > 0.4 && sum < 1.05
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    #[test]
    fn pagerank_converges_to_a_distribution() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = PageRank::new(1 << 10, 8, 3);
        bench.setup(&machine, &ann).unwrap();
        let report = bench.run(&machine, &ann, &[0, 1]).unwrap();
        assert!(bench.verify(), "rank sum = {}", bench.ranks().iter().sum::<f64>());
        assert!(report.mem_ops > 0);
        assert!(report.flops > 0);
    }

    #[test]
    fn hubs_gain_rank_on_power_law_graphs() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = PageRank::new(1 << 10, 8, 5);
        bench.setup(&machine, &ann).unwrap();
        bench.run(&machine, &ann, &[0]).unwrap();
        let uniform = 1.0 / bench.num_vertices() as f64;
        let max = bench.ranks().iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0 * uniform, "power-law hubs should concentrate rank");
    }

    #[test]
    fn load_phase_touches_all_graph_memory() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = PageRank::new(1 << 10, 4, 1);
        bench.setup(&machine, &ann).unwrap();
        bench.run(&machine, &ann, &[0, 1, 2]).unwrap();
        // After the load phase every allocated region is resident.
        let total_alloc: u64 = machine
            .vm()
            .regions()
            .iter()
            .map(|r| r.len.div_ceil(machine.config().page_bytes) * machine.config().page_bytes)
            .sum();
        assert_eq!(machine.rss_bytes(), total_alloc);
        // Two phases recorded: load graph + iterate.
        let names: Vec<String> = ann.phases().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["load graph".to_string(), "iterate".to_string()]);
    }
}
