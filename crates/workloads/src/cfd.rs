//! CFD — an unstructured-grid finite-volume Euler solver (Rodinia `euler3d`).
//!
//! The benchmark stores five conservative variables (density, 3-component
//! momentum, energy) per mesh element and, each iteration, computes fluxes by
//! gathering the variables of four neighbouring elements through an index
//! array, then applies a time-step update. The per-thread partition of the
//! `normals` array is contiguous (regular accesses) while the neighbour
//! gathers are indirect — exactly the mixed pattern the paper visualises in
//! Figures 5 and 6 and the source of the irregular accesses that appear at 32
//! threads.

use arch_sim::Machine;
use nmo::{Annotations, NmoError};

use crate::generators::{mesh_neighbors, NEIGHBORS_PER_ELEMENT};
use crate::{chunk_range, parallel_on_cores, pc, Workload, WorkloadReport};

/// Number of conservative variables per element (density, momentum x3, energy).
pub const NVAR: usize = 5;

struct Regions {
    variables: arch_sim::Region,
    fluxes: arch_sim::Region,
    normals: arch_sim::Region,
    neighbors: arch_sim::Region,
}

/// The CFD (euler3d-style) benchmark.
pub struct CfdBench {
    elements: usize,
    iterations: usize,
    /// Fraction of neighbour links that jump far away in the mesh.
    far_fraction: f64,
    variables: Vec<f64>,
    fluxes: Vec<f64>,
    normals: Vec<f64>,
    neighbors: Vec<u32>,
    regions: Option<Regions>,
}

impl CfdBench {
    /// Create a CFD instance with `elements` mesh cells and `iterations`
    /// solver steps.
    pub fn new(elements: usize, iterations: usize) -> Self {
        Self::with_far_fraction(elements, iterations, 0.08)
    }

    /// Create a CFD instance with an explicit far-neighbour fraction (0.0
    /// gives a fully local banded mesh, larger values more irregularity).
    pub fn with_far_fraction(elements: usize, iterations: usize, far_fraction: f64) -> Self {
        let neighbors = mesh_neighbors(elements, far_fraction, 0xCFD);
        let mut variables = vec![0.0f64; elements * NVAR];
        for (i, v) in variables.iter_mut().enumerate() {
            // A smooth initial field.
            *v = 1.0 + 0.001 * ((i % 97) as f64);
        }
        CfdBench {
            elements,
            iterations,
            far_fraction,
            variables,
            fluxes: vec![0.0; elements * NVAR],
            normals: vec![0.25; elements * NEIGHBORS_PER_ELEMENT * 3],
            neighbors,
            regions: None,
        }
    }

    /// Number of mesh elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// The configured far-neighbour fraction.
    pub fn far_fraction(&self) -> f64 {
        self.far_fraction
    }
}

impl Workload for CfdBench {
    fn name(&self) -> &'static str {
        "cfd"
    }

    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError> {
        let e = self.elements as u64;
        let variables = machine.alloc("variables", e * NVAR as u64 * 8)?;
        let fluxes = machine.alloc("fluxes", e * NVAR as u64 * 8)?;
        let normals = machine.alloc("normals", e * NEIGHBORS_PER_ELEMENT as u64 * 3 * 8)?;
        let neighbors =
            machine.alloc("elements_surrounding", e * NEIGHBORS_PER_ELEMENT as u64 * 4)?;
        annotations.tag_addr("variables", variables.start, variables.end());
        annotations.tag_addr("fluxes", fluxes.start, fluxes.end());
        annotations.tag_addr("normals", normals.start, normals.end());
        annotations.tag_addr("elements_surrounding", neighbors.start, neighbors.end());
        self.regions = Some(Regions { variables, fluxes, normals, neighbors });
        Ok(())
    }

    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError> {
        let regions = self
            .regions
            .as_ref()
            .ok_or_else(|| NmoError::Workload("cfd: run() called before setup()".into()))?;
        let elements = self.elements;
        let threads = cores.len();
        let (rv, rf, rn, rnb) = (
            regions.variables.start,
            regions.fluxes.start,
            regions.normals.start,
            regions.neighbors.start,
        );

        let variables_ptr = SendPtr(self.variables.as_mut_ptr());
        let fluxes_ptr = SendPtr(self.fluxes.as_mut_ptr());
        let normals = &self.normals;
        let neighbors = &self.neighbors;

        annotations.start("computation loop", machine.makespan_ns());
        for _iter in 0..self.iterations {
            // Flux computation: gather own + neighbour variables, read the
            // element's normals, write the flux vector.
            let flux_result = parallel_on_cores(machine, cores, |tid, engine| {
                let range = chunk_range(elements, threads, tid);
                let vars = variables_ptr;
                let flx = fluxes_ptr;
                for e in range {
                    let mut acc = [0.0f64; NVAR];
                    // Own variables.
                    for (v, slot) in acc.iter_mut().enumerate() {
                        let idx = e * NVAR + v;
                        engine.load_at(pc::CFD_FLUX, rv + (idx * 8) as u64, 8);
                        *slot += unsafe { *vars.0.add(idx) };
                    }
                    // Neighbour gathers through the index array (indirect).
                    for k in 0..NEIGHBORS_PER_ELEMENT {
                        let nb_idx = e * NEIGHBORS_PER_ELEMENT + k;
                        engine.load_at(pc::CFD_FLUX, rnb + (nb_idx * 4) as u64, 4);
                        let nb = neighbors[nb_idx] as usize;
                        // Normals for this face: contiguous per element.
                        for d in 0..3 {
                            let n_idx = (e * NEIGHBORS_PER_ELEMENT + k) * 3 + d;
                            engine.load_at(pc::CFD_FLUX, rn + (n_idx * 8) as u64, 8);
                        }
                        let weight = normals[(e * NEIGHBORS_PER_ELEMENT + k) * 3];
                        for (v, slot) in acc.iter_mut().enumerate() {
                            let idx = nb * NVAR + v;
                            engine.load_at(pc::CFD_FLUX, rv + (idx * 8) as u64, 8);
                            *slot += weight * unsafe { *vars.0.add(idx) };
                        }
                    }
                    // Store the flux vector.
                    for (v, value) in acc.iter().enumerate() {
                        let idx = e * NVAR + v;
                        engine.store_at(pc::CFD_FLUX, rf + (idx * 8) as u64, 8);
                        unsafe { *flx.0.add(idx) = value * 0.2 };
                    }
                    engine.flops((NVAR * (NEIGHBORS_PER_ELEMENT + 2)) as u64);
                    engine.cpu_work(8);
                }
            });

            flux_result?;
            // Time-step update: variables += dt * fluxes (regular).
            let step_result = parallel_on_cores(machine, cores, |tid, engine| {
                let range = chunk_range(elements, threads, tid);
                let vars = variables_ptr;
                let flx = fluxes_ptr;
                for e in range {
                    for v in 0..NVAR {
                        let idx = e * NVAR + v;
                        engine.load_at(pc::CFD_TIME_STEP, rf + (idx * 8) as u64, 8);
                        engine.load_at(pc::CFD_TIME_STEP, rv + (idx * 8) as u64, 8);
                        engine.store_at(pc::CFD_TIME_STEP, rv + (idx * 8) as u64, 8);
                        unsafe {
                            *vars.0.add(idx) += 1e-4 * *flx.0.add(idx);
                        }
                    }
                    engine.flops(2 * NVAR as u64);
                    engine.cpu_work(4);
                }
            });
            step_result?;
        }
        annotations.stop(machine.makespan_ns());

        let counters = machine.counters();
        Ok(WorkloadReport {
            mem_ops: counters.mem_access,
            flops: counters.flops,
            checksum: self.variables.iter().take(1024).sum::<f64>(),
        })
    }

    fn verify(&self) -> bool {
        // The update is a contraction of finite values; verify nothing blew up
        // and the field actually changed.
        self.variables.iter().all(|v| v.is_finite())
            && self.fluxes.iter().take(NVAR * 16).any(|f| *f != 0.0)
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    #[test]
    fn cfd_runs_and_verifies() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = CfdBench::new(512, 2);
        bench.setup(&machine, &ann).unwrap();
        let report = bench.run(&machine, &ann, &[0, 1]).unwrap();
        assert!(bench.verify());
        assert!(report.mem_ops > 0);
        assert!(report.flops > 0);
        // Per element per iteration: 5 own + 4*(1 + 3 + 5) neighbour-related
        // loads + 5 flux stores = 46 in the flux kernel, plus 15 in the
        // time-step kernel.
        let expected = 512 * 2 * (46 + 15);
        assert_eq!(report.mem_ops, expected as u64);
    }

    #[test]
    fn tags_cover_all_arrays_and_phase_recorded() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = CfdBench::new(256, 1);
        bench.setup(&machine, &ann).unwrap();
        let names: Vec<String> = ann.tags().iter().map(|t| t.name.clone()).collect();
        for expected in ["variables", "fluxes", "normals", "elements_surrounding"] {
            assert!(names.iter().any(|n| n == expected), "missing tag {expected}");
        }
        bench.run(&machine, &ann, &[0]).unwrap();
        let phases = ann.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "computation loop");
        assert!(!phases[0].is_open());
    }

    #[test]
    fn single_and_multi_thread_produce_same_access_count() {
        let count = |threads: usize| {
            let machine = Machine::new(MachineConfig::small_test());
            let ann = Annotations::new();
            let mut bench = CfdBench::new(300, 1);
            bench.setup(&machine, &ann).unwrap();
            let cores: Vec<usize> = (0..threads).collect();
            bench.run(&machine, &ann, &cores).unwrap().mem_ops
        };
        assert_eq!(count(1), count(4));
    }

    #[test]
    fn irregularity_increases_with_far_fraction() {
        // More far neighbours => more distinct cache lines touched during the
        // gathers => more DRAM traffic.
        let traffic = |far: f64| {
            let machine = Machine::new(MachineConfig::small_test());
            let ann = Annotations::new();
            let mut bench = CfdBench::with_far_fraction(2048, 1, far);
            bench.setup(&machine, &ann).unwrap();
            bench.run(&machine, &ann, &[0]).unwrap();
            machine.counters().bus_read_bytes
        };
        let local = traffic(0.0);
        let irregular = traffic(0.5);
        assert!(
            irregular > local,
            "far gathers should increase bus traffic: local={local} irregular={irregular}"
        );
    }
}
