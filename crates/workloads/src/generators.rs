//! Deterministic synthetic-input generators.
//!
//! The paper's workloads consume external inputs (Rodinia data files, the
//! CloudSuite movie-ratings dataset, graph files). Those inputs are not
//! redistributable here, so this module generates synthetic equivalents with
//! the same structural properties: power-law graphs for BFS/PageRank
//! (RMAT-style), uniform graphs as a regular baseline, an unstructured-mesh
//! neighbour map for CFD, and a sparse user–movie rating matrix for ALS. All
//! generators are seeded and deterministic so experiment trials are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in compressed sparse row (CSR) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Row offsets, length `num_vertices + 1`.
    pub offsets: Vec<u32>,
    /// Column indices (edge targets), length = number of edges.
    pub edges: Vec<u32>,
}

impl CsrGraph {
    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        &self.edges[start..end]
    }

    /// Out-degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Basic structural validation (offsets monotone, targets in range).
    pub fn validate(&self) -> bool {
        if self.offsets.len() != self.num_vertices + 1 {
            return false;
        }
        if self.offsets.first() != Some(&0)
            || self.offsets.last().map(|&v| v as usize) != Some(self.edges.len())
        {
            return false;
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        self.edges.iter().all(|&t| (t as usize) < self.num_vertices)
    }

    /// Build a CSR graph from an edge list.
    pub fn from_edges(num_vertices: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; num_vertices];
        for &(src, _) in edge_list {
            degree[src as usize] += 1;
        }
        let mut offsets = vec![0u32; num_vertices + 1];
        for v in 0..num_vertices {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![0u32; edge_list.len()];
        for &(src, dst) in edge_list {
            let c = &mut cursor[src as usize];
            edges[*c as usize] = dst;
            *c += 1;
        }
        CsrGraph { num_vertices, offsets, edges }
    }
}

/// Generate a uniform random directed graph with `num_vertices` vertices and
/// average out-degree `avg_degree`.
pub fn uniform_graph(num_vertices: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edge_list = Vec::with_capacity(num_vertices * avg_degree);
    for v in 0..num_vertices as u32 {
        for _ in 0..avg_degree {
            let dst = rng.gen_range(0..num_vertices as u32);
            edge_list.push((v, dst));
        }
    }
    CsrGraph::from_edges(num_vertices, &edge_list)
}

/// Generate an RMAT-style power-law graph (parameters a=0.57, b=0.19, c=0.19,
/// the Graph500 defaults), with `num_vertices` rounded up to a power of two.
pub fn rmat_graph(num_vertices: usize, avg_degree: usize, seed: u64) -> CsrGraph {
    let n = num_vertices.next_power_of_two().max(2);
    let levels = n.trailing_zeros();
    let mut rng = StdRng::seed_from_u64(seed);
    let num_edges = n * avg_degree;
    let mut edge_list = Vec::with_capacity(num_edges);
    let (a, b, c) = (0.57f64, 0.19f64, 0.19f64);
    for _ in 0..num_edges {
        let (mut src, mut dst) = (0usize, 0usize);
        for _ in 0..levels {
            src <<= 1;
            dst <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edge_list.push((src as u32, dst as u32));
    }
    CsrGraph::from_edges(n, &edge_list)
}

/// An unstructured-mesh neighbour map for the CFD benchmark: each element has
/// `NEIGHBORS_PER_ELEMENT` neighbours, mostly nearby (mesh locality) with a
/// fraction of far-away neighbours that create the irregular accesses seen in
/// the paper's Figure 6.
pub const NEIGHBORS_PER_ELEMENT: usize = 4;

/// Generate the neighbour indices of an unstructured mesh with `elements`
/// cells. `far_fraction` in `[0,1]` controls how many neighbour links jump to
/// a random remote element.
pub fn mesh_neighbors(elements: usize, far_fraction: f64, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(elements * NEIGHBORS_PER_ELEMENT);
    let window = (elements / 64).max(8) as i64;
    for e in 0..elements as i64 {
        for k in 0..NEIGHBORS_PER_ELEMENT as i64 {
            let neighbor = if rng.gen::<f64>() < far_fraction {
                rng.gen_range(0..elements as i64)
            } else {
                // Nearby neighbour: a small signed offset, alternating sides.
                let off = rng.gen_range(1..=window) * if k % 2 == 0 { 1 } else { -1 };
                (e + off).rem_euclid(elements as i64)
            };
            out.push(neighbor as u32);
        }
    }
    out
}

/// A sparse user–movie rating in coordinate form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index.
    pub user: u32,
    /// Movie index.
    pub movie: u32,
    /// Rating value in `[0.5, 5.0]`.
    pub value: f32,
}

/// Generate a synthetic user–movie rating set with a skewed movie popularity
/// distribution (a few blockbusters receive most ratings), as in the
/// MovieLens-style dataset CloudSuite uses.
pub fn ratings(users: usize, movies: usize, ratings_per_user: usize, seed: u64) -> Vec<Rating> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(users * ratings_per_user);
    for u in 0..users as u32 {
        for _ in 0..ratings_per_user {
            // Zipf-ish: square a uniform variable to skew towards low indices.
            let z: f64 = rng.gen::<f64>();
            let movie = ((z * z) * movies as f64) as u32 % movies as u32;
            let value = (rng.gen_range(1..=10) as f32) * 0.5;
            out.push(Rating { user: u, movie, value });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_graph_is_valid_and_sized() {
        let g = uniform_graph(1000, 8, 1);
        assert!(g.validate());
        assert_eq!(g.num_vertices, 1000);
        assert_eq!(g.num_edges(), 8000);
        // Every vertex has exactly avg_degree out-edges in the uniform model.
        assert!((0..1000).all(|v| g.degree(v) == 8));
    }

    #[test]
    fn rmat_graph_is_valid_and_skewed() {
        let g = rmat_graph(1 << 12, 8, 7);
        assert!(g.validate());
        assert_eq!(g.num_vertices, 1 << 12);
        let max_degree = (0..g.num_vertices).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() / g.num_vertices;
        assert!(
            max_degree > avg * 5,
            "power-law graphs should have hubs: max {max_degree}, avg {avg}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_graph(500, 4, 42), uniform_graph(500, 4, 42));
        assert_eq!(rmat_graph(512, 4, 42), rmat_graph(512, 4, 42));
        assert_eq!(mesh_neighbors(100, 0.1, 3), mesh_neighbors(100, 0.1, 3));
        let r1 = ratings(10, 50, 5, 9);
        let r2 = ratings(10, 50, 5, 9);
        assert_eq!(r1.len(), r2.len());
        assert!(r1.iter().zip(&r2).all(|(a, b)| a == b));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_graph(500, 4, 1), uniform_graph(500, 4, 2));
    }

    #[test]
    fn mesh_neighbors_in_range_and_mostly_local() {
        let elements = 4096;
        let nbrs = mesh_neighbors(elements, 0.05, 11);
        assert_eq!(nbrs.len(), elements * NEIGHBORS_PER_ELEMENT);
        assert!(nbrs.iter().all(|&n| (n as usize) < elements));
        let local = nbrs
            .chunks(NEIGHBORS_PER_ELEMENT)
            .enumerate()
            .flat_map(|(e, ns)| ns.iter().map(move |&n| (e as i64 - n as i64).abs()))
            .filter(|d| *d <= (elements / 64) as i64)
            .count();
        assert!(local as f64 / nbrs.len() as f64 > 0.8, "most neighbours should be local");
    }

    #[test]
    fn ratings_are_in_range_and_skewed() {
        let r = ratings(100, 1000, 20, 5);
        assert_eq!(r.len(), 2000);
        assert!(r.iter().all(|x| x.value >= 0.5 && x.value <= 5.0 && (x.movie as usize) < 1000));
        // Popularity skew: the most popular decile of movies gets well over
        // its proportional share of ratings.
        let low_decile = r.iter().filter(|x| (x.movie as usize) < 100).count();
        assert!(low_decile as f64 / r.len() as f64 > 0.2);
    }

    #[test]
    fn csr_from_edges_groups_by_source() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 0), (0, 2), (1, 1)]);
        assert!(g.validate());
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
    }
}
