//! BFS — breadth-first search (Rodinia).
//!
//! A level-synchronised frontier BFS over a CSR graph: each level, the
//! current frontier is split across threads; every thread scans its vertices'
//! adjacency lists, marks unvisited targets, and appends them to a private
//! next-frontier buffer that is concatenated at the level barrier.
//!
//! The access pattern is the opposite of STREAM: the adjacency scan is
//! sequential but the `visited`/`levels` lookups are data-dependent and
//! scattered, so the core cannot overlap their latency. The benchmark exposes
//! part of that dependent-miss latency to the simulated clock, which makes
//! BFS latency-bound rather than throughput-bound — this is why, in the
//! paper's Figure 8, BFS keeps a much higher sampling accuracy and far fewer
//! collisions than STREAM/CFD at small sampling periods (its sample
//! production rate per cycle is much lower).

use parking_lot::Mutex;

use arch_sim::{Machine, MemLevel};
use nmo::{Annotations, NmoError};

use crate::generators::{rmat_graph, uniform_graph, CsrGraph};
use crate::{chunk_range, parallel_on_cores, pc, Workload, WorkloadReport};

/// Graph flavour used by the BFS benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Uniform random graph (regular degree distribution).
    Uniform,
    /// RMAT power-law graph (hubs, like real-world graphs).
    Rmat,
}

struct Regions {
    offsets: arch_sim::Region,
    edges: arch_sim::Region,
    levels: arch_sim::Region,
}

/// The BFS benchmark.
pub struct BfsBench {
    graph: CsrGraph,
    source: usize,
    /// Per-vertex BFS level (u32::MAX = unvisited).
    levels: Vec<u32>,
    regions: Option<Regions>,
    visited_count: usize,
}

impl BfsBench {
    /// Create a BFS benchmark over a generated graph.
    pub fn new(num_vertices: usize, avg_degree: usize, kind: GraphKind) -> Self {
        let graph = match kind {
            GraphKind::Uniform => uniform_graph(num_vertices, avg_degree, 0xBF5),
            GraphKind::Rmat => rmat_graph(num_vertices, avg_degree, 0xBF5),
        };
        let n = graph.num_vertices;
        BfsBench { graph, source: 0, levels: vec![u32::MAX; n], regions: None, visited_count: 0 }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Vertices reached by the last run.
    pub fn reached(&self) -> usize {
        self.visited_count
    }
}

impl Workload for BfsBench {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError> {
        let n = self.graph.num_vertices as u64;
        let m = self.graph.num_edges() as u64;
        let offsets = machine.alloc("row_offsets", (n + 1) * 4)?;
        let edges = machine.alloc("col_indices", m * 4)?;
        let levels = machine.alloc("levels", n * 4)?;
        annotations.tag_addr("row_offsets", offsets.start, offsets.end());
        annotations.tag_addr("col_indices", edges.start, edges.end());
        annotations.tag_addr("levels", levels.start, levels.end());
        self.regions = Some(Regions { offsets, edges, levels });
        Ok(())
    }

    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError> {
        let regions = self
            .regions
            .as_ref()
            .ok_or_else(|| NmoError::Workload("bfs: run() called before setup()".into()))?;
        let threads = cores.len();
        let (ro, re, rl) = (regions.offsets.start, regions.edges.start, regions.levels.start);
        let graph = &self.graph;

        self.levels.iter_mut().for_each(|l| *l = u32::MAX);
        self.levels[self.source] = 0;
        // The level array is written concurrently by threads; each vertex is
        // claimed at most once per level thanks to the shared mutex-protected
        // next frontier. A benign double-mark is acceptable for BFS levels.
        let levels_ptr = SendPtr(self.levels.as_mut_ptr());

        annotations.start("bfs", machine.makespan_ns());
        let mut frontier: Vec<u32> = vec![self.source as u32];
        let mut level: u32 = 0;
        let mut visited = 1usize;
        while !frontier.is_empty() {
            let next = Mutex::new(Vec::<u32>::new());
            let frontier_ref = &frontier;
            let result = parallel_on_cores(machine, cores, |tid, engine| {
                let range = chunk_range(frontier_ref.len(), threads, tid);
                let mut local_next = Vec::new();
                let lv = levels_ptr;
                for &v in &frontier_ref[range] {
                    let v = v as usize;
                    // Read the two row offsets (sequential-ish).
                    engine.load_at(pc::BFS_EXPAND, ro + (v * 4) as u64, 4);
                    engine.load_at(pc::BFS_EXPAND, ro + ((v + 1) * 4) as u64, 4);
                    let edge_base = graph.offsets[v] as usize;
                    for (j, &t) in graph.neighbors(v).iter().enumerate() {
                        let t_us = t as usize;
                        // Sequential scan of the adjacency list.
                        engine.load_at(pc::BFS_EXPAND, re + ((edge_base + j) * 4) as u64, 4);
                        // Data-dependent lookup of the target's level: the
                        // core must wait for it, so expose part of the miss
                        // latency as a stall.
                        let out = engine.load_at(pc::BFS_EXPAND, rl + (t_us * 4) as u64, 4);
                        if out.level() >= MemLevel::Slc {
                            let exposed = (out.latency_cycles - out.occupancy_cycles) / 2;
                            engine.idle(exposed);
                        }
                        let seen = unsafe { *lv.0.add(t_us) };
                        if seen == u32::MAX {
                            unsafe { *lv.0.add(t_us) = level + 1 };
                            engine.store_at(pc::BFS_EXPAND, rl + (t_us * 4) as u64, 4);
                            local_next.push(t);
                        }
                        engine.cpu_work(4);
                    }
                }
                if !local_next.is_empty() {
                    next.lock().extend_from_slice(&local_next);
                }
            });
            result?;
            let mut next = next.into_inner();
            // Deduplicate vertices discovered by multiple threads in the same level.
            next.sort_unstable();
            next.dedup();
            visited += next.len();
            frontier = next;
            level += 1;
        }
        annotations.stop(machine.makespan_ns());
        self.visited_count = visited;

        let counters = machine.counters();
        Ok(WorkloadReport {
            mem_ops: counters.mem_access,
            flops: counters.flops,
            checksum: visited as f64 + level as f64 * 1e-3,
        })
    }

    fn verify(&self) -> bool {
        // The source must be at level 0 and every reached vertex must have a
        // neighbour one level below it (spot-check the first few thousand).
        if self.levels[self.source] != 0 {
            return false;
        }
        let n_check = self.graph.num_vertices.min(4000);
        for v in 0..n_check {
            let l = self.levels[v];
            if l == u32::MAX || l == 0 {
                continue;
            }
            let ok = (0..self.graph.num_vertices)
                .any(|u| self.levels[u] == l - 1 && self.graph.neighbors(u).contains(&(v as u32)));
            if !ok {
                return false;
            }
        }
        true
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut u32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    #[test]
    fn bfs_reaches_most_of_a_connected_uniform_graph() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = BfsBench::new(2000, 8, GraphKind::Uniform);
        bench.setup(&machine, &ann).unwrap();
        let report = bench.run(&machine, &ann, &[0, 1]).unwrap();
        assert!(bench.verify());
        assert!(report.mem_ops > 0);
        // A uniform degree-8 graph is almost surely one giant component.
        assert!(bench.reached() as f64 > 0.95 * bench.num_vertices() as f64);
    }

    #[test]
    fn bfs_on_rmat_graph_runs() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = BfsBench::new(1 << 11, 8, GraphKind::Rmat);
        bench.setup(&machine, &ann).unwrap();
        bench.run(&machine, &ann, &[0, 1, 2, 3]).unwrap();
        assert!(bench.verify());
        assert!(bench.reached() > 1);
    }

    #[test]
    fn thread_count_does_not_change_reachability() {
        let reached = |threads: usize| {
            let machine = Machine::new(MachineConfig::small_test());
            let ann = Annotations::new();
            let mut bench = BfsBench::new(1500, 6, GraphKind::Uniform);
            bench.setup(&machine, &ann).unwrap();
            let cores: Vec<usize> = (0..threads).collect();
            bench.run(&machine, &ann, &cores).unwrap();
            bench.reached()
        };
        assert_eq!(reached(1), reached(4));
    }

    #[test]
    fn tags_and_phase_registered() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = BfsBench::new(512, 4, GraphKind::Uniform);
        bench.setup(&machine, &ann).unwrap();
        assert_eq!(ann.tags().len(), 3);
        bench.run(&machine, &ann, &[0]).unwrap();
        assert_eq!(ann.phases().len(), 1);
        assert_eq!(ann.phases()[0].name, "bfs");
    }
}
