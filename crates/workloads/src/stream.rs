//! STREAM — the sustainable-memory-bandwidth benchmark (Triad reported in
//! the paper).
//!
//! Three arrays `a`, `b`, `c` are streamed with perfectly regular, contiguous
//! per-thread partitions; the Triad kernel computes `a[i] = b[i] + SCALAR *
//! c[i]`. The paper uses STREAM both for the region-profiling demonstration
//! (Figure 4: each thread's samples form short incremental line segments
//! inside the tagged arrays) and as the workload of the aux-buffer and
//! thread-count sensitivity studies (Figures 9–11).

use arch_sim::Machine;
use nmo::{Annotations, NmoError};

use crate::{chunk_range, parallel_on_cores, pc, Workload, WorkloadReport};

/// STREAM scalar constant (the reference implementation uses 3.0).
pub const SCALAR: f64 = 3.0;

/// Which STREAM kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = SCALAR * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + SCALAR * c[i]` (the kernel the paper reports).
    Triad,
}

impl StreamKernel {
    fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
        }
    }

    fn pc(self) -> u64 {
        match self {
            StreamKernel::Copy => pc::STREAM_COPY,
            StreamKernel::Scale => pc::STREAM_SCALE,
            StreamKernel::Add => pc::STREAM_ADD,
            StreamKernel::Triad => pc::STREAM_TRIAD,
        }
    }
}

struct Regions {
    a: arch_sim::Region,
    b: arch_sim::Region,
    c: arch_sim::Region,
}

/// The STREAM benchmark.
pub struct StreamBench {
    /// Elements per array.
    n: usize,
    /// Number of times the kernel is repeated.
    iterations: usize,
    /// Kernel to run.
    kernel: StreamKernel,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    regions: Option<Regions>,
}

impl StreamBench {
    /// Create a STREAM instance with `n` elements per array and `iterations`
    /// repetitions of the Triad kernel.
    pub fn new(n: usize, iterations: usize) -> Self {
        Self::with_kernel(n, iterations, StreamKernel::Triad)
    }

    /// Create a STREAM instance running a specific kernel.
    pub fn with_kernel(n: usize, iterations: usize, kernel: StreamKernel) -> Self {
        StreamBench {
            n,
            iterations,
            kernel,
            a: vec![1.0; n],
            b: vec![2.0; n],
            c: vec![0.5; n],
            regions: None,
        }
    }

    /// Array length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the arrays are empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bytes moved per Triad iteration (3 arrays of f64, as STREAM counts it).
    pub fn bytes_per_iteration(&self) -> u64 {
        3 * 8 * self.n as u64
    }
}

impl Workload for StreamBench {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError> {
        let bytes = (self.n * 8) as u64;
        let a = machine.alloc("a", bytes)?;
        let b = machine.alloc("b", bytes)?;
        let c = machine.alloc("c", bytes)?;
        annotations.tag_addr("a", a.start, a.end());
        annotations.tag_addr("b", b.start, b.end());
        annotations.tag_addr("c", c.start, c.end());
        self.regions = Some(Regions { a, b, c });
        Ok(())
    }

    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError> {
        let regions = self
            .regions
            .as_ref()
            .ok_or_else(|| NmoError::Workload("stream: run() called before setup()".into()))?;
        let n = self.n;
        let threads = cores.len();
        let kernel = self.kernel;
        let kpc = kernel.pc();

        // The host arrays are updated for real so the result can be verified;
        // shared mutable access is safe because threads write disjoint chunks.
        let a_ptr = SendPtr(self.a.as_mut_ptr());
        let b_ptr = SendPtr(self.b.as_mut_ptr());
        let c_ptr = SendPtr(self.c.as_mut_ptr());
        let (ra, rb, rc) = (regions.a.start, regions.b.start, regions.c.start);

        let mut report = WorkloadReport::default();
        for _iter in 0..self.iterations {
            annotations.start(kernel.name(), machine.makespan_ns());
            let result = parallel_on_cores(machine, cores, |tid, engine| {
                let range = chunk_range(n, threads, tid);
                let a = a_ptr;
                let b = b_ptr;
                let c = c_ptr;
                const BLOCK: usize = 256;
                let mut i = range.start;
                while i < range.end {
                    let end = (i + BLOCK).min(range.end);
                    for k in i..end {
                        let off = (k * 8) as u64;
                        match kernel {
                            StreamKernel::Copy => {
                                engine.load_at(kpc, ra + off, 8);
                                engine.store_at(kpc, rc + off, 8);
                                unsafe { *c.0.add(k) = *a.0.add(k) };
                            }
                            StreamKernel::Scale => {
                                engine.load_at(kpc, rc + off, 8);
                                engine.store_at(kpc, rb + off, 8);
                                unsafe { *b.0.add(k) = SCALAR * *c.0.add(k) };
                            }
                            StreamKernel::Add => {
                                engine.load_at(kpc, ra + off, 8);
                                engine.load_at(kpc, rb + off, 8);
                                engine.store_at(kpc, rc + off, 8);
                                unsafe { *c.0.add(k) = *a.0.add(k) + *b.0.add(k) };
                            }
                            StreamKernel::Triad => {
                                engine.load_at(kpc, rb + off, 8);
                                engine.load_at(kpc, rc + off, 8);
                                engine.store_at(kpc, ra + off, 8);
                                unsafe { *a.0.add(k) = *b.0.add(k) + SCALAR * *c.0.add(k) };
                            }
                        }
                    }
                    let done = (end - i) as u64;
                    engine.flops(2 * done);
                    engine.cpu_work(done);
                    i = end;
                }
            });
            annotations.stop(machine.makespan_ns());
            result?;
        }

        let counters = machine.counters();
        report.mem_ops = counters.mem_access;
        report.flops = counters.flops;
        report.checksum = self.a.iter().take(1024).sum::<f64>();
        Ok(report)
    }

    fn verify(&self) -> bool {
        match self.kernel {
            StreamKernel::Triad => {
                // After any number of iterations a[i] = b[i] + SCALAR*c[i]
                // with b and c untouched.
                self.a
                    .iter()
                    .zip(self.b.iter().zip(&self.c))
                    .all(|(a, (b, c))| (a - (b + SCALAR * c)).abs() < 1e-12)
            }
            StreamKernel::Copy => self.c.iter().zip(&self.a).all(|(c, a)| c == a),
            StreamKernel::Scale => {
                self.b.iter().zip(&self.c).all(|(b, c)| (b - SCALAR * c).abs() < 1e-12)
            }
            StreamKernel::Add => self
                .c
                .iter()
                .zip(self.a.iter().zip(&self.b))
                .all(|(c, (a, b))| (c - (a + b)).abs() < 1e-12),
        }
    }
}

/// A raw pointer wrapper that is `Send`/`Copy` so worker threads can write
/// their disjoint chunks of the host arrays.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    fn run(kernel: StreamKernel, threads: usize) -> (StreamBench, WorkloadReport) {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = StreamBench::with_kernel(4096, 2, kernel);
        bench.setup(&machine, &ann).unwrap();
        let cores: Vec<usize> = (0..threads).collect();
        let report = bench.run(&machine, &ann, &cores).unwrap();
        (bench, report)
    }

    #[test]
    fn triad_verifies_and_counts() {
        let (bench, report) = run(StreamKernel::Triad, 2);
        assert!(bench.verify());
        // 3 mem ops per element per iteration.
        assert_eq!(report.mem_ops, 3 * 4096 * 2);
        assert_eq!(report.flops, 2 * 4096 * 2);
        assert!(report.checksum > 0.0);
    }

    #[test]
    fn all_kernels_verify() {
        for kernel in
            [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad]
        {
            let (bench, _) = run(kernel, 3);
            assert!(bench.verify(), "kernel {kernel:?} failed verification");
        }
    }

    #[test]
    fn tags_and_phases_registered() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = StreamBench::new(1024, 3);
        bench.setup(&machine, &ann).unwrap();
        assert_eq!(ann.tags().len(), 3);
        bench.run(&machine, &ann, &[0]).unwrap();
        let phases = ann.phases();
        assert_eq!(phases.len(), 3, "one phase per iteration");
        assert!(phases.iter().all(|p| p.name == "triad" && !p.is_open()));
    }

    #[test]
    fn work_split_across_threads_is_disjoint_and_complete() {
        let (bench, report) = run(StreamKernel::Triad, 4);
        assert!(bench.verify());
        assert_eq!(report.mem_ops, 3 * 4096 * 2, "no element processed twice or skipped");
    }

    #[test]
    fn rss_reflects_three_arrays() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = StreamBench::new(8192, 1);
        bench.setup(&machine, &ann).unwrap();
        bench.run(&machine, &ann, &[0, 1]).unwrap();
        let page = machine.config().page_bytes;
        let expected = 3 * (8192u64 * 8).div_ceil(page) * page;
        assert_eq!(machine.rss_bytes(), expected);
    }
}
