//! In-memory Analytics — ALS collaborative filtering (CloudSuite).
//!
//! The CloudSuite benchmark runs alternating least squares over a user–movie
//! rating matrix held in memory. Its NMO-visible signature (Figures 2 and 3,
//! left) is a gradual climb of memory usage as data structures are
//! materialised, and a *periodic* bandwidth pattern: each ALS sweep re-reads
//! the ratings and one factor matrix while updating the other, producing a
//! bandwidth peak roughly every sweep.
//!
//! The re-implementation alternates simplified least-squares sweeps (a
//! damped gradient step rather than a full Cholesky solve — the memory-access
//! structure, which is what NMO observes, is the same: for every rating, read
//! the counterpart factor row and update the owned factor row).

use arch_sim::Machine;
use nmo::{Annotations, NmoError};

use crate::generators::{ratings, Rating};
use crate::{chunk_range, parallel_on_cores, pc, Workload, WorkloadReport};

/// Latent-factor dimensionality (CloudSuite uses small ranks; 16 keeps the
/// factor rows two cache lines wide).
pub const RANK: usize = 16;

struct Regions {
    ratings: arch_sim::Region,
    user_factors: arch_sim::Region,
    item_factors: arch_sim::Region,
}

/// The In-memory Analytics (ALS) benchmark.
pub struct InMemAnalytics {
    users: usize,
    movies: usize,
    sweeps: usize,
    ratings: Vec<Rating>,
    /// Ratings grouped by user (CSR-like offsets into `ratings`).
    user_offsets: Vec<u32>,
    user_factors: Vec<f32>,
    item_factors: Vec<f32>,
    regions: Option<Regions>,
}

impl InMemAnalytics {
    /// Create an ALS benchmark with `users` users, `movies` movies,
    /// `ratings_per_user` ratings each, iterated for `sweeps` alternations.
    pub fn new(users: usize, movies: usize, ratings_per_user: usize, sweeps: usize) -> Self {
        let mut r = ratings(users, movies, ratings_per_user, 0xA15);
        r.sort_by_key(|x| x.user);
        let mut user_offsets = vec![0u32; users + 1];
        for rating in &r {
            user_offsets[rating.user as usize + 1] += 1;
        }
        for u in 0..users {
            user_offsets[u + 1] += user_offsets[u];
        }
        InMemAnalytics {
            users,
            movies,
            sweeps,
            ratings: r,
            user_offsets,
            user_factors: vec![0.1; users * RANK],
            item_factors: vec![0.1; movies * RANK],
            regions: None,
        }
    }

    /// Number of ratings.
    pub fn num_ratings(&self) -> usize {
        self.ratings.len()
    }

    /// Root-mean-square error of the current factorisation over the ratings.
    pub fn rmse(&self) -> f64 {
        let mut se = 0.0f64;
        for r in &self.ratings {
            let pred =
                predict(&self.user_factors, &self.item_factors, r.user as usize, r.movie as usize);
            se += (pred - r.value as f64).powi(2);
        }
        (se / self.ratings.len().max(1) as f64).sqrt()
    }
}

fn predict(user_factors: &[f32], item_factors: &[f32], user: usize, movie: usize) -> f64 {
    let uf = &user_factors[user * RANK..(user + 1) * RANK];
    let mf = &item_factors[movie * RANK..(movie + 1) * RANK];
    uf.iter().zip(mf).map(|(a, b)| (*a as f64) * (*b as f64)).sum()
}

impl Workload for InMemAnalytics {
    fn name(&self) -> &'static str {
        "inmem-analytics"
    }

    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError> {
        let ratings_bytes = self.ratings.len() as u64 * 12;
        let uf_bytes = (self.users * RANK * 4) as u64;
        let if_bytes = (self.movies * RANK * 4) as u64;
        let ratings = machine.alloc("ratings", ratings_bytes)?;
        let user_factors = machine.alloc("user_factors", uf_bytes)?;
        let item_factors = machine.alloc("item_factors", if_bytes)?;
        annotations.tag_addr("ratings", ratings.start, ratings.end());
        annotations.tag_addr("user_factors", user_factors.start, user_factors.end());
        annotations.tag_addr("item_factors", item_factors.start, item_factors.end());
        self.regions = Some(Regions { ratings, user_factors, item_factors });
        Ok(())
    }

    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError> {
        let regions = self.regions.as_ref().ok_or_else(|| {
            NmoError::Workload("inmem-analytics: run() called before setup()".into())
        })?;
        let threads = cores.len();
        let users = self.users;
        let (rr, ru, ri) =
            (regions.ratings.start, regions.user_factors.start, regions.item_factors.start);
        let ratings_ref = &self.ratings;
        let offsets = &self.user_offsets;

        let uf_ptr = SendPtr(self.user_factors.as_mut_ptr());
        let if_ptr = SendPtr(self.item_factors.as_mut_ptr());

        let mut report = WorkloadReport::default();
        for sweep in 0..self.sweeps {
            // User sweep: for each user, read its ratings and the item factor
            // rows, update the user factor row (gradient step).
            annotations.start("als-user-sweep", machine.makespan_ns());
            let user_result = parallel_on_cores(machine, cores, |tid, engine| {
                let urange = chunk_range(users, threads, tid);
                let uf = uf_ptr;
                let itf = if_ptr;
                for u in urange {
                    let r0 = offsets[u] as usize;
                    let r1 = offsets[u + 1] as usize;
                    // Load this user's factor row.
                    for k in 0..RANK {
                        engine.load_at(pc::ALS_USER, ru + ((u * RANK + k) * 4) as u64, 4);
                    }
                    for (ridx, rating) in ratings_ref[r0..r1].iter().enumerate() {
                        engine.load_at(pc::ALS_USER, rr + ((r0 + ridx) * 12) as u64, 12);
                        let m = rating.movie as usize;
                        // Gather the item factor row (scattered by movie id).
                        for k in 0..RANK {
                            engine.load_at(pc::ALS_USER, ri + ((m * RANK + k) * 4) as u64, 4);
                        }
                        let err = rating.value as f64 - predict_raw(uf.0, itf.0, u, m);
                        for k in 0..RANK {
                            unsafe {
                                let item = *itf.0.add(m * RANK + k) as f64;
                                let cur = uf.0.add(u * RANK + k);
                                *cur = (*cur as f64 + 0.01 * err * item) as f32;
                            }
                        }
                        engine.flops(4 * RANK as u64);
                    }
                    // Store the updated user factor row.
                    for k in 0..RANK {
                        engine.store_at(pc::ALS_USER, ru + ((u * RANK + k) * 4) as u64, 4);
                    }
                    engine.cpu_work(8);
                }
            });
            annotations.stop(machine.makespan_ns());
            user_result?;

            // Item sweep: symmetric pass reading user rows and updating item
            // rows. Partition by user range but update items with a small
            // damped step (races between threads on popular movies are
            // numerically benign for this workload model).
            annotations.start("als-item-sweep", machine.makespan_ns());
            let item_result = parallel_on_cores(machine, cores, |tid, engine| {
                let urange = chunk_range(users, threads, tid);
                let uf = uf_ptr;
                let itf = if_ptr;
                for u in urange {
                    let r0 = offsets[u] as usize;
                    let r1 = offsets[u + 1] as usize;
                    for (ridx, rating) in ratings_ref[r0..r1].iter().enumerate() {
                        engine.load_at(pc::ALS_ITEM, rr + ((r0 + ridx) * 12) as u64, 12);
                        let m = rating.movie as usize;
                        for k in 0..RANK {
                            engine.load_at(pc::ALS_ITEM, ru + ((u * RANK + k) * 4) as u64, 4);
                            engine.load_at(pc::ALS_ITEM, ri + ((m * RANK + k) * 4) as u64, 4);
                        }
                        let err = rating.value as f64 - predict_raw(uf.0, itf.0, u, m);
                        for k in 0..RANK {
                            unsafe {
                                let user = *uf.0.add(u * RANK + k) as f64;
                                let cur = itf.0.add(m * RANK + k);
                                *cur = (*cur as f64 + 0.01 * err * user) as f32;
                            }
                            engine.store_at(pc::ALS_ITEM, ri + ((m * RANK + k) * 4) as u64, 4);
                        }
                        engine.flops(4 * RANK as u64);
                    }
                    engine.cpu_work(8);
                }
            });
            annotations.stop(machine.makespan_ns());
            item_result?;

            // Between sweeps the driver does bookkeeping with little memory
            // traffic, which creates the bandwidth troughs of Figure 3.
            if sweep + 1 < self.sweeps {
                parallel_on_cores(machine, cores, |_tid, engine| {
                    engine.cpu_work(200_000);
                })?;
            }
        }

        let counters = machine.counters();
        report.mem_ops = counters.mem_access;
        report.flops = counters.flops;
        report.checksum = self.rmse();
        Ok(report)
    }

    fn verify(&self) -> bool {
        // Training must reduce the RMSE below the trivial all-0.1 predictor
        // and keep every factor finite.
        let trivial = {
            let pred = 0.1f64 * 0.1 * RANK as f64;
            let se: f64 = self.ratings.iter().map(|r| (pred - r.value as f64).powi(2)).sum::<f64>();
            (se / self.ratings.len().max(1) as f64).sqrt()
        };
        self.user_factors.iter().chain(&self.item_factors).all(|f| f.is_finite())
            && self.rmse() < trivial
    }
}

fn predict_raw(uf: *mut f32, itf: *mut f32, user: usize, movie: usize) -> f64 {
    let mut acc = 0.0f64;
    for k in 0..RANK {
        unsafe {
            acc += *uf.add(user * RANK + k) as f64 * *itf.add(movie * RANK + k) as f64;
        }
    }
    acc
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    #[test]
    fn als_reduces_rmse() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = InMemAnalytics::new(200, 500, 20, 3);
        bench.setup(&machine, &ann).unwrap();
        let before = bench.rmse();
        let report = bench.run(&machine, &ann, &[0, 1]).unwrap();
        let after = bench.rmse();
        assert!(after < before, "RMSE should drop: {before} -> {after}");
        assert!(bench.verify());
        assert!(report.mem_ops > 0);
    }

    #[test]
    fn phases_alternate_user_and_item_sweeps() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = InMemAnalytics::new(64, 128, 10, 2);
        bench.setup(&machine, &ann).unwrap();
        bench.run(&machine, &ann, &[0]).unwrap();
        let names: Vec<String> = ann.phases().iter().map(|p| p.name.clone()).collect();
        assert_eq!(
            names,
            vec!["als-user-sweep", "als-item-sweep", "als-user-sweep", "als-item-sweep"]
        );
    }

    #[test]
    fn memory_grows_as_structures_are_touched() {
        let machine = Machine::new(MachineConfig::small_test());
        let ann = Annotations::new();
        let mut bench = InMemAnalytics::new(256, 512, 16, 1);
        bench.setup(&machine, &ann).unwrap();
        assert_eq!(machine.rss_bytes(), 0, "allocation alone is not residency");
        bench.run(&machine, &ann, &[0, 1]).unwrap();
        assert!(machine.rss_bytes() > 0);
        assert!(!machine.rss_series().is_empty());
    }

    #[test]
    fn deterministic_rating_layout() {
        let a = InMemAnalytics::new(50, 100, 5, 1);
        let b = InMemAnalytics::new(50, 100, 5, 1);
        assert_eq!(a.num_ratings(), b.num_ratings());
        assert_eq!(a.user_offsets, b.user_offsets);
    }
}
