//! # workloads — the HPC and Cloud benchmarks used in the paper's evaluation
//!
//! The paper evaluates NMO on five applications (Section V):
//!
//! * **STREAM** (Triad kernel) — sustainable memory bandwidth;
//! * **CFD** (Rodinia) — an unstructured-grid finite-volume Euler solver;
//! * **BFS** (Rodinia) — breadth-first search on a graph;
//! * **Page Rank** (CloudSuite Graph Analytics) — vertex influence;
//! * **In-memory Analytics** (CloudSuite) — ALS collaborative filtering on
//!   user–movie ratings.
//!
//! Each is re-implemented here as a real multi-threaded Rust program whose
//! computation runs on host memory while every load/store is routed through
//! the simulated machine (`arch_sim::Engine`), so SPE sampling, bandwidth
//! counting, and RSS tracking see the same access *shape* the original codes
//! produce: STREAM's perfectly regular per-thread streams, CFD's partly
//! regular / partly indirect neighbour gathers, BFS's frontier-driven
//! irregular traversal, PageRank's pull-style gathers after a bulk load
//! phase, and ALS's periodic sweeps over factor matrices.
//!
//! All workloads implement the [`Workload`] trait so the benchmark harness
//! can run any of them under the NMO profiler with arbitrary thread counts.

#![warn(missing_docs)]

pub mod bfs;
pub mod cfd;
pub mod generators;
pub mod inmem;
pub mod pagerank;
pub mod stream;

pub use bfs::BfsBench;
pub use cfd::CfdBench;
pub use inmem::InMemAnalytics;
pub use pagerank::PageRank;
pub use stream::StreamBench;

use arch_sim::Machine;
use nmo::NmoError;

/// The workload contract (defined in `nmo` so profiling sessions can drive
/// any benchmark without a dependency cycle; re-exported here for
/// convenience).
pub use nmo::workload::{Workload, WorkloadReport};

/// Synthetic program-counter bases per workload kernel (used so SPE samples
/// can be attributed to code regions).
pub mod pc {
    /// STREAM triad kernel.
    pub const STREAM_TRIAD: u64 = 0x40_1000;
    /// STREAM copy kernel.
    pub const STREAM_COPY: u64 = 0x40_1100;
    /// STREAM scale kernel.
    pub const STREAM_SCALE: u64 = 0x40_1200;
    /// STREAM add kernel.
    pub const STREAM_ADD: u64 = 0x40_1300;
    /// CFD flux computation.
    pub const CFD_FLUX: u64 = 0x40_2000;
    /// CFD time-step update.
    pub const CFD_TIME_STEP: u64 = 0x40_2100;
    /// BFS frontier expansion.
    pub const BFS_EXPAND: u64 = 0x40_3000;
    /// PageRank gather.
    pub const PR_GATHER: u64 = 0x40_4000;
    /// PageRank graph load.
    pub const PR_LOAD: u64 = 0x40_4100;
    /// ALS user-factor update.
    pub const ALS_USER: u64 = 0x40_5000;
    /// ALS item-factor update.
    pub const ALS_ITEM: u64 = 0x40_5100;
}

/// Run `body` once per core on its own thread, each with an attached engine.
///
/// This is the OpenMP-`parallel for`-style helper every workload uses: thread
/// `i` is bound to `cores[i]` and receives `(i, &mut Engine)`. A core that
/// cannot be attached (out of range, or checked out by another engine) is
/// reported as an [`NmoError`] after the remaining threads finish, instead of
/// panicking inside the worker thread.
pub fn parallel_on_cores<F>(machine: &Machine, cores: &[usize], body: F) -> Result<(), NmoError>
where
    F: Fn(usize, &mut arch_sim::Engine<'_>) + Sync,
{
    let failures: parking_lot::Mutex<Vec<arch_sim::SimError>> =
        parking_lot::Mutex::named(Vec::new(), "workloads.failures");
    std::thread::scope(|s| {
        for (idx, &core) in cores.iter().enumerate() {
            let body = &body;
            let failures = &failures;
            s.spawn(move || match machine.attach(core) {
                Ok(mut engine) => body(idx, &mut engine),
                Err(e) => failures.lock().push(e),
            });
        }
    });
    let mut failures = failures.into_inner();
    match failures.pop() {
        Some(e) => Err(e.into()),
        None => Ok(()),
    }
}

/// Parse an environment variable, falling back to `default` when unset or
/// unparseable — the tuning-knob helper the examples share.
pub fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Split `n` items into `parts` contiguous ranges (the last part absorbs the
/// remainder), mirroring OpenMP static scheduling.
pub fn chunk_range(n: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    let parts = parts.max(1);
    let base = n / parts;
    let rem = n % parts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    start..(start + len).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    #[test]
    fn chunk_range_covers_everything_exactly_once() {
        for n in [0usize, 1, 7, 100, 1023] {
            for parts in [1usize, 2, 3, 8] {
                let mut covered = vec![false; n];
                for p in 0..parts {
                    for i in chunk_range(n, parts, p) {
                        assert!(!covered[i], "index {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(covered.into_iter().all(|c| c), "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn chunk_range_is_balanced() {
        let sizes: Vec<usize> = (0..8).map(|p| chunk_range(100, 8, p).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn parallel_on_cores_attaches_each_core_once() {
        let machine = Machine::new(MachineConfig::small_test());
        let region = machine.alloc("x", 1 << 16).unwrap();
        parallel_on_cores(&machine, &[0, 1, 2], |idx, engine| {
            assert_eq!(engine.core_id(), idx);
            engine.load(region.start + idx as u64 * 64, 8);
        })
        .unwrap();
        assert_eq!(machine.counters().mem_access, 3);
    }

    #[test]
    fn parallel_on_cores_reports_unattachable_cores() {
        let machine = Machine::new(MachineConfig::small_test());
        let err = parallel_on_cores(&machine, &[0, 99], |_idx, _engine| {}).unwrap_err();
        assert!(matches!(err, nmo::NmoError::Sim(arch_sim::SimError::NoSuchCore(99))), "{err}");
    }
}
