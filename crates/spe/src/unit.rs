//! The SPE sampling unit: interval counter, random perturbation, pipeline
//! tracking, collision detection, and filtering.
//!
//! This is the "hardware" part of SPE (Figure 1 of the paper, left to
//! middle): it decides *which* operations become samples and what the sample
//! record contains. Buffer management, interrupts, and overhead accounting
//! live in [`crate::driver`].

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arch_sim::{DataSource, MemOutcome, Op, TimeConv};

use crate::config::SpeConfig;
use crate::packet::SpeRecord;
use crate::stats::SpeStats;

/// What happened to one operation presented to the sampling unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The operation was not selected (interval counter did not expire).
    NotSampled,
    /// The operation was selected but the previous sample was still being
    /// tracked in the pipeline; the new sample is dropped.
    Collision,
    /// The operation was selected and tracked but discarded by the filters.
    Filtered,
    /// The operation produced a sample record.
    Record(SpeRecord),
}

/// Per-core SPE sampling state machine.
pub struct SamplerUnit {
    cfg: SpeConfig,
    stats: Arc<SpeStats>,
    timeconv: TimeConv,
    rng: StdRng,
    /// Operations remaining until the next sample is selected.
    interval_remaining: u64,
    /// Core-cycle time until which the previously selected sample is still
    /// being tracked through the pipeline (collision window).
    in_flight_until: u64,
}

impl std::fmt::Debug for SamplerUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerUnit")
            .field("cfg", &self.cfg)
            .field("interval_remaining", &self.interval_remaining)
            .field("in_flight_until", &self.in_flight_until)
            .finish()
    }
}

impl SamplerUnit {
    /// Create a sampling unit. `seed` makes the perturbation deterministic
    /// per core (use the core id so trials are reproducible).
    pub fn new(cfg: SpeConfig, stats: Arc<SpeStats>, timeconv: TimeConv, seed: u64) -> Self {
        let mut unit = SamplerUnit {
            cfg,
            stats,
            timeconv,
            rng: StdRng::seed_from_u64(seed ^ 0x5045_5350), // "SPES"
            interval_remaining: 0,
            in_flight_until: 0,
        };
        unit.reload_interval();
        unit
    }

    /// The configuration in force.
    pub fn config(&self) -> &SpeConfig {
        &self.cfg
    }

    fn reload_interval(&mut self) {
        let jitter =
            if self.cfg.jitter_ops == 0 { 0 } else { self.rng.gen_range(0..=self.cfg.jitter_ops) };
        self.interval_remaining = self.cfg.sample_period.saturating_sub(jitter).max(1);
    }

    /// Present one retired operation to the sampling unit.
    pub fn on_op(
        &mut self,
        op: &Op,
        outcome: Option<&MemOutcome>,
        now_cycles: u64,
    ) -> SampleOutcome {
        if !self.cfg.samples_kind(op.kind) {
            return SampleOutcome::NotSampled;
        }
        self.stats.add(&self.stats.population_ops, 1);

        if self.interval_remaining > 1 {
            self.interval_remaining -= 1;
            return SampleOutcome::NotSampled;
        }
        // The interval counter reached zero: this operation is selected.
        self.reload_interval();
        self.stats.add(&self.stats.samples_selected, 1);

        if now_cycles < self.in_flight_until {
            self.stats.add(&self.stats.collisions, 1);
            return SampleOutcome::Collision;
        }

        let (latency, source) = match outcome {
            Some(o) => (o.latency_cycles, o.source),
            // Branch samples carry no data access; model them as trivially
            // tracked operations.
            None => (1, DataSource::L1),
        };
        self.in_flight_until = now_cycles + latency;

        if latency < self.cfg.min_latency {
            self.stats.add(&self.stats.filtered_out, 1);
            return SampleOutcome::Filtered;
        }

        let vaddr = if outcome.is_some() { op.vaddr } else { 0 };
        let timestamp = self.timeconv.cycles_to_timer_ticks(now_cycles).max(1);
        SampleOutcome::Record(SpeRecord::new(op.pc, vaddr, timestamp, latency, op.kind, source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MemOutcome;

    fn outcome(latency: u64) -> MemOutcome {
        MemOutcome {
            source: DataSource::L2,
            latency_cycles: latency,
            occupancy_cycles: 1,
            bus_bytes: 0,
            first_touch: false,
        }
    }

    fn unit(period: u64) -> SamplerUnit {
        SamplerUnit::new(
            SpeConfig::loads_stores(period),
            SpeStats::new_shared(),
            TimeConv::altra(),
            42,
        )
    }

    #[test]
    fn sampling_rate_tracks_period() {
        let period = 100;
        let mut u = unit(period);
        let mut records = 0u64;
        let n = 100_000u64;
        let out = outcome(4);
        for i in 0..n {
            let now = i * 4 + 1_000_000;
            if let SampleOutcome::Record(_) =
                u.on_op(&Op::load(0x400, 0x1000 + i * 8, 8), Some(&out), now)
            {
                records += 1;
            }
        }
        let expected = n / period;
        let lo = expected * 95 / 100;
        let hi = expected * 110 / 100;
        assert!(records >= lo && records <= hi, "records={records} expected≈{expected}");
    }

    #[test]
    fn non_population_ops_never_sampled() {
        let mut u = unit(2);
        let mut sampled = 0;
        for i in 0..1000u64 {
            match u.on_op(&Op::other(0x4), None, i) {
                SampleOutcome::NotSampled => {}
                _ => sampled += 1,
            }
        }
        assert_eq!(sampled, 0);
        assert_eq!(u.stats.snapshot().population_ops, 0);

        // Branches are excluded under the default (NMO) configuration.
        let mut u = unit(2);
        for i in 0..100u64 {
            assert_eq!(u.on_op(&Op::branch(0x4), None, i), SampleOutcome::NotSampled);
        }
    }

    #[test]
    fn collisions_when_samples_overlap_in_flight_window() {
        // Period 2 with long-latency accesses and a clock that barely
        // advances: the next sample lands inside the previous sample's
        // tracking window.
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(2) };
        let stats = SpeStats::new_shared();
        let mut u = SamplerUnit::new(cfg, stats.clone(), TimeConv::altra(), 7);
        let out = outcome(10_000);
        for i in 0..1000u64 {
            u.on_op(&Op::load(0, 0x1000, 8), Some(&out), 1 + i);
        }
        let snap = stats.snapshot();
        assert!(snap.collisions > 0, "expected collisions, got {snap:?}");
        assert!(snap.collisions < snap.samples_selected);
    }

    #[test]
    fn no_collisions_when_gaps_are_long() {
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(100) };
        let stats = SpeStats::new_shared();
        let mut u = SamplerUnit::new(cfg, stats.clone(), TimeConv::altra(), 7);
        let out = outcome(4);
        for i in 0..100_000u64 {
            u.on_op(&Op::load(0, 0x1000, 8), Some(&out), i * 4);
        }
        assert_eq!(stats.snapshot().collisions, 0);
    }

    #[test]
    fn latency_filter_discards_fast_hits() {
        let cfg = SpeConfig { min_latency: 50, jitter_ops: 0, ..SpeConfig::loads_stores(10) };
        let stats = SpeStats::new_shared();
        let mut u = SamplerUnit::new(cfg, stats.clone(), TimeConv::altra(), 3);
        let fast = outcome(4);
        for i in 0..10_000u64 {
            let r = u.on_op(&Op::load(0, 0x1000, 8), Some(&fast), i * 400);
            assert!(!matches!(r, SampleOutcome::Record(_)), "fast access must be filtered");
        }
        let snap = stats.snapshot();
        assert!(snap.filtered_out > 0);
        assert_eq!(snap.records_written, 0);
    }

    #[test]
    fn records_carry_op_facts() {
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(1) };
        let mut u = SamplerUnit::new(cfg, SpeStats::new_shared(), TimeConv::altra(), 3);
        let out = MemOutcome {
            source: DataSource::RemoteDram(1),
            latency_cycles: 333,
            occupancy_cycles: 20,
            bus_bytes: 64,
            first_touch: false,
        };
        let r = u.on_op(&Op::store(0x40_2000, 0xffff_0000_beef, 8), Some(&out), 1_000_000);
        match r {
            SampleOutcome::Record(rec) => {
                assert_eq!(rec.vaddr, 0xffff_0000_beef);
                assert_eq!(rec.pc, 0x40_2000);
                assert!(rec.is_store);
                assert_eq!(rec.source, DataSource::RemoteDram(1), "serving node survives");
                assert_eq!(rec.latency, 333);
                assert!(rec.timestamp > 0);
            }
            other => panic!("expected a record, got {other:?}"),
        }
    }

    #[test]
    fn perturbation_keeps_period_close_but_not_exact() {
        // With jitter enabled, the gap between consecutive samples should vary
        // but stay within [period - jitter, period].
        let period = 1000u64;
        let cfg = SpeConfig::loads_stores(period);
        let jitter = cfg.jitter_ops;
        let stats = SpeStats::new_shared();
        let mut u = SamplerUnit::new(cfg, stats, TimeConv::altra(), 11);
        let out = outcome(4);
        let mut gaps = Vec::new();
        let mut last: Option<u64> = None;
        for i in 0..200_000u64 {
            if let SampleOutcome::Record(_) = u.on_op(&Op::load(0, 0x1000, 8), Some(&out), i * 400)
            {
                if let Some(prev) = last {
                    gaps.push(i - prev);
                }
                last = Some(i);
            }
        }
        assert!(!gaps.is_empty());
        let distinct: std::collections::HashSet<_> = gaps.iter().collect();
        assert!(distinct.len() > 1, "perturbation should vary the gap");
        for g in &gaps {
            assert!(*g >= period - jitter && *g <= period, "gap {g} outside expected range");
        }
    }
}
