//! SPE packet encoding and decoding.
//!
//! SPE emits each sample as a sequence of packets padded to a 64-byte aligned
//! record (paper Section IV-A). NMO decodes only two packets from each
//! record: the *virtual address* packet, whose 64-bit payload sits at byte
//! offset 31 and is prefaced by the header byte `0xb2`, and the *timestamp*
//! packet, whose payload sits at byte offset 56 prefaced by `0x71`. A record
//! is skipped if either header byte is wrong or either payload is zero —
//! which is how NMO tolerates records mangled by sample collisions.
//!
//! The encoder writes a fuller record (events, operation type, latency
//! counter, data source, PC) so richer tools can be built on top, but the
//! layout guarantees the two NMO offsets exactly.
//!
//! The data-source packet uses the [`DataSource`] encoding (modeled on the
//! Neoverse codes, with the serving memory node in the high nibble), so
//! tiered-memory tools can tell local-DDR from remote/CXL fills. The events
//! packet mirrors the hardware semantics: every level is distinguishable
//! from the events field alone — L1 hits set [`events::L1_HIT`], SLC hits
//! set [`events::SLC_HIT`], every DRAM-class fill (any node) sets
//! [`events::LLC_MISS`], and remote-node fills additionally set
//! [`events::REMOTE_ACCESS`] (the SPE `E[10]` remote-access event).

use arch_sim::{DataSource, OpKind};

/// Size of one encoded SPE record in bytes (64-byte aligned, as observed by
/// NMO on the Ampere testbed).
pub const SPE_RECORD_BYTES: usize = 64;

/// Header byte of the virtual-address packet.
pub const HDR_VADDR: u8 = 0xb2;
/// Header byte of the timestamp packet.
pub const HDR_TIMESTAMP: u8 = 0x71;
/// Header byte of the PC (instruction-address) packet.
pub const HDR_PC: u8 = 0xb0;
/// Header byte of the events packet.
pub const HDR_EVENTS: u8 = 0x52;
/// Header byte of the operation-type packet.
pub const HDR_OP_TYPE: u8 = 0x49;
/// Header byte of the latency counter packet.
pub const HDR_LATENCY: u8 = 0x99;
/// Header byte of the data-source packet.
pub const HDR_DATA_SOURCE: u8 = 0x43;

/// Byte offset of the vaddr payload within a record (per the paper).
pub const VADDR_OFFSET: usize = 31;
/// Byte offset of the timestamp payload within a record (per the paper).
pub const TIMESTAMP_OFFSET: usize = 56;

/// Events-packet bits (subset of the SPE events payload).
pub mod events {
    /// The sampled operation retired.
    pub const RETIRED: u16 = 1 << 1;
    /// The access hit in the L1 data cache.
    pub const L1_HIT: u16 = 1 << 2;
    /// The translation missed in the TLB (unused by the model, reserved).
    pub const TLB_MISS: u16 = 1 << 4;
    /// The access missed the last-level cache (served by a DRAM node —
    /// local or remote).
    pub const LLC_MISS: u16 = 1 << 5;
    /// The access hit in the shared system-level cache. Without this bit an
    /// SLC-served record would be indistinguishable from an L2 hit in the
    /// events field (neither `L1_HIT` nor `LLC_MISS`).
    pub const SLC_HIT: u16 = 1 << 6;
    /// The access crossed the socket/expander boundary (SPE `E[10]`): set
    /// for remote-node DRAM fills on tiered topologies.
    pub const REMOTE_ACCESS: u16 = 1 << 10;
}

/// A decoded SPE sample record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeRecord {
    /// Synthetic program counter of the sampled operation.
    pub pc: u64,
    /// Virtual data address of the sampled operation.
    pub vaddr: u64,
    /// Timestamp in generic-timer ticks.
    pub timestamp: u64,
    /// Total latency in cycles (saturated to 16 bits as in hardware counters).
    pub latency: u16,
    /// Whether the operation was a store (else a load/branch).
    pub is_store: bool,
    /// The memory-system source that served the access (carries the node id
    /// for DRAM-class fills).
    pub source: DataSource,
}

impl SpeRecord {
    /// Build a record from sampled-operation facts.
    pub fn new(
        pc: u64,
        vaddr: u64,
        timestamp: u64,
        latency_cycles: u64,
        kind: OpKind,
        source: DataSource,
    ) -> Self {
        SpeRecord {
            pc,
            vaddr,
            timestamp,
            latency: latency_cycles.min(u16::MAX as u64) as u16,
            is_store: kind == OpKind::Store,
            source,
        }
    }

    /// The events-packet payload implied by this record's source.
    pub fn events_payload(&self) -> u16 {
        let mut ev = events::RETIRED;
        match self.source {
            DataSource::L1 => ev |= events::L1_HIT,
            DataSource::L2 => {}
            DataSource::Slc => ev |= events::SLC_HIT,
            DataSource::Dram(_) => ev |= events::LLC_MISS,
            DataSource::RemoteDram(_) => ev |= events::LLC_MISS | events::REMOTE_ACCESS,
        }
        ev
    }

    /// Encode into the 64-byte record layout.
    pub fn encode(&self) -> [u8; SPE_RECORD_BYTES] {
        let mut out = [0u8; SPE_RECORD_BYTES];
        // Events packet: header + 2-byte payload.
        out[0] = HDR_EVENTS;
        out[1..3].copy_from_slice(&self.events_payload().to_le_bytes());
        // Operation type packet: header + 1-byte payload.
        out[3] = HDR_OP_TYPE;
        out[4] = if self.is_store { 0x01 } else { 0x00 };
        // Latency counter packet: header + 2-byte payload.
        out[5] = HDR_LATENCY;
        out[6..8].copy_from_slice(&self.latency.to_le_bytes());
        // Data source packet: header + 1-byte payload.
        out[8] = HDR_DATA_SOURCE;
        out[9] = self.source.encode();
        // PC packet: header + 8-byte payload.
        out[10] = HDR_PC;
        out[11..19].copy_from_slice(&self.pc.to_le_bytes());
        // bytes 19..30 are PAD (0x00).
        // Virtual address packet: header at 30, payload at 31..39.
        out[VADDR_OFFSET - 1] = HDR_VADDR;
        out[VADDR_OFFSET..VADDR_OFFSET + 8].copy_from_slice(&self.vaddr.to_le_bytes());
        // bytes 39..55 are PAD (0x00).
        // Timestamp packet: header at 55, payload at 56..64.
        out[TIMESTAMP_OFFSET - 1] = HDR_TIMESTAMP;
        out[TIMESTAMP_OFFSET..TIMESTAMP_OFFSET + 8].copy_from_slice(&self.timestamp.to_le_bytes());
        out
    }

    /// Decode a full record (all packets). Returns `None` for malformed data.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < SPE_RECORD_BYTES {
            return None;
        }
        if bytes[0] != HDR_EVENTS
            || bytes[3] != HDR_OP_TYPE
            || bytes[5] != HDR_LATENCY
            || bytes[8] != HDR_DATA_SOURCE
            || bytes[10] != HDR_PC
        {
            return None;
        }
        let (vaddr, timestamp) = decode_nmo_fields(bytes)?;
        let latency = u16::from_le_bytes([bytes[6], bytes[7]]);
        let is_store = bytes[4] == 0x01;
        let source = DataSource::decode(bytes[9])?;
        let pc = u64::from_le_bytes(bytes[11..19].try_into().ok()?);
        Some(SpeRecord { pc, vaddr, timestamp, latency, is_store, source })
    }
}

/// The minimal decode NMO performs (paper Section IV-A): check the `0xb2` and
/// `0x71` header bytes, read the 64-bit virtual address at offset 31 and the
/// 64-bit timestamp at offset 56, and reject the record if either header is
/// wrong or either value is zero.
pub fn decode_nmo_fields(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < SPE_RECORD_BYTES {
        return None;
    }
    if bytes[VADDR_OFFSET - 1] != HDR_VADDR || bytes[TIMESTAMP_OFFSET - 1] != HDR_TIMESTAMP {
        return None;
    }
    let vaddr = u64::from_le_bytes(bytes[VADDR_OFFSET..VADDR_OFFSET + 8].try_into().ok()?);
    let timestamp =
        u64::from_le_bytes(bytes[TIMESTAMP_OFFSET..TIMESTAMP_OFFSET + 8].try_into().ok()?);
    if vaddr == 0 || timestamp == 0 {
        return None;
    }
    Some((vaddr, timestamp))
}

/// One record yielded by the incremental decoder: the two NMO fields plus
/// the opportunistic full decode for the richer packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedRecord {
    /// Sampled virtual data address (vaddr packet, offset 31).
    pub vaddr: u64,
    /// Timestamp in generic-timer ticks (timestamp packet, offset 56).
    pub ticks: u64,
    /// The full record, when every packet decoded cleanly. The NMO fields
    /// above are valid even when this is `None` (e.g. a record whose
    /// data-source packet was mangled by a collision).
    pub full: Option<SpeRecord>,
}

/// Incremental decoder over a drained aux-buffer chunk.
///
/// The monitor thread drains aux data in arbitrary-size chunks (one per
/// `PERF_RECORD_AUX`); this iterator walks the chunk in 64-byte steps,
/// yielding every record whose NMO fields validate and counting the rest in
/// [`SpeRecordIter::skipped`] — the per-drain loss accounting a streaming
/// profiler reports alongside each batch. A trailing partial record (fewer
/// than 64 bytes) is also counted as skipped.
#[derive(Debug)]
pub struct SpeRecordIter<'a> {
    data: &'a [u8],
    pos: usize,
    skipped: u64,
    skipped_bytes: u64,
    decoded: u64,
}

impl SpeRecordIter<'_> {
    /// Records rejected so far (bad headers, zero fields, trailing partial).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Bytes covered by the rejections so far: 64 per skipped record plus
    /// the exact length of a trailing partial record. Together with the
    /// decoded records this accounts for every consumed byte:
    /// `decoded() * 64 + skipped_bytes()` equals the number of bytes walked
    /// — the loss-accounting invariant the fuzz tests pin.
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped_bytes
    }

    /// Records successfully decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Upper bound on the number of records remaining in the chunk.
    pub fn remaining_capacity(&self) -> usize {
        (self.data.len() - self.pos) / SPE_RECORD_BYTES
    }
}

impl Iterator for SpeRecordIter<'_> {
    type Item = DecodedRecord;

    fn next(&mut self) -> Option<DecodedRecord> {
        while self.pos + SPE_RECORD_BYTES <= self.data.len() {
            let chunk = &self.data[self.pos..self.pos + SPE_RECORD_BYTES];
            self.pos += SPE_RECORD_BYTES;
            match decode_nmo_fields(chunk) {
                Some((vaddr, ticks)) => {
                    self.decoded += 1;
                    return Some(DecodedRecord { vaddr, ticks, full: SpeRecord::decode(chunk) });
                }
                None => {
                    self.skipped += 1;
                    self.skipped_bytes += SPE_RECORD_BYTES as u64;
                }
            }
        }
        if self.pos < self.data.len() {
            // Trailing partial record: count once, then stop for good.
            self.skipped += 1;
            self.skipped_bytes += (self.data.len() - self.pos) as u64;
            self.pos = self.data.len();
        }
        None
    }
}

/// Decode a drained aux chunk incrementally (see [`SpeRecordIter`]).
pub fn decode_records(data: &[u8]) -> SpeRecordIter<'_> {
    SpeRecordIter { data, pos: 0, skipped: 0, skipped_bytes: 0, decoded: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every data source the machine model can produce, across node ids.
    fn all_sources() -> Vec<DataSource> {
        let mut sources = vec![DataSource::L1, DataSource::L2, DataSource::Slc];
        for n in 0..4u8 {
            sources.push(DataSource::Dram(n));
            sources.push(DataSource::RemoteDram(n));
        }
        sources
    }

    fn sample() -> SpeRecord {
        SpeRecord::new(
            0x40_1000,
            0xffff_0000_1234,
            987_654,
            333,
            OpKind::Store,
            DataSource::Dram(0),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = sample();
        let bytes = rec.encode();
        assert_eq!(bytes.len(), SPE_RECORD_BYTES);
        assert_eq!(SpeRecord::decode(&bytes), Some(rec));
    }

    #[test]
    fn encode_decode_roundtrip_over_all_sources() {
        for source in all_sources() {
            for kind in [OpKind::Load, OpKind::Store] {
                let rec = SpeRecord::new(0x40_2000, 0xffff_0000_4000, 55_555, 123, kind, source);
                let back = SpeRecord::decode(&rec.encode()).expect("decodes");
                assert_eq!(back, rec, "{source:?} {kind:?}");
                assert_eq!(back.source, source);
            }
        }
    }

    #[test]
    fn events_distinguish_every_level() {
        let ev_of = |source| {
            let rec = SpeRecord::new(1, 2, 3, 10, OpKind::Load, source);
            let bytes = rec.encode();
            u16::from_le_bytes([bytes[1], bytes[2]])
        };

        let l1 = ev_of(DataSource::L1);
        assert_ne!(l1 & events::L1_HIT, 0);
        assert_eq!(l1 & (events::LLC_MISS | events::SLC_HIT), 0);

        let l2 = ev_of(DataSource::L2);
        assert_eq!(l2 & (events::L1_HIT | events::SLC_HIT | events::LLC_MISS), 0);

        // SLC-served records carry their own bit: without it they would be
        // indistinguishable from L2 hits in the events field.
        let slc = ev_of(DataSource::Slc);
        assert_ne!(slc & events::SLC_HIT, 0);
        assert_eq!(slc & (events::L1_HIT | events::LLC_MISS), 0);
        assert_ne!(slc, l2, "SLC and L2 must differ in the events field");

        // Every DRAM-class source sets LLC_MISS, not just node 0.
        for source in [
            DataSource::Dram(0),
            DataSource::Dram(2),
            DataSource::RemoteDram(0),
            DataSource::RemoteDram(3),
        ] {
            let ev = ev_of(source);
            assert_ne!(ev & events::LLC_MISS, 0, "{source:?} must flag LLC_MISS");
            assert_eq!(ev & (events::L1_HIT | events::SLC_HIT), 0, "{source:?}");
            assert_eq!(
                ev & events::REMOTE_ACCESS != 0,
                source.is_remote(),
                "{source:?} remote-access bit"
            );
        }

        // All retired.
        for source in all_sources() {
            assert_ne!(ev_of(source) & events::RETIRED, 0);
        }
    }

    #[test]
    fn nmo_offsets_match_paper() {
        let rec = sample();
        let bytes = rec.encode();
        // Header bytes just before the payloads, exactly as the paper states.
        assert_eq!(bytes[30], 0xb2);
        assert_eq!(bytes[55], 0x71);
        let (vaddr, ts) = decode_nmo_fields(&bytes).unwrap();
        assert_eq!(vaddr, 0xffff_0000_1234);
        assert_eq!(ts, 987_654);
    }

    #[test]
    fn corrupted_header_is_skipped() {
        let rec = sample();
        let mut bytes = rec.encode();
        bytes[30] = 0x00;
        assert!(decode_nmo_fields(&bytes).is_none());
        assert!(SpeRecord::decode(&bytes).is_none());

        let mut bytes2 = rec.encode();
        bytes2[55] = 0xff;
        assert!(decode_nmo_fields(&bytes2).is_none());
    }

    #[test]
    fn invalid_data_source_code_rejected() {
        let mut bytes = sample().encode();
        bytes[9] = 0x3; // not a defined source code
        assert!(SpeRecord::decode(&bytes).is_none());
        // The NMO fields still decode: the data-source packet is one of the
        // "richer" packets NMO itself does not depend on.
        assert!(decode_nmo_fields(&bytes).is_some());
    }

    #[test]
    fn zero_vaddr_or_timestamp_rejected() {
        let mut rec = sample();
        rec.vaddr = 0;
        assert!(decode_nmo_fields(&rec.encode()).is_none());
        let mut rec = sample();
        rec.timestamp = 0;
        assert!(decode_nmo_fields(&rec.encode()).is_none());
    }

    #[test]
    fn latency_saturates() {
        let rec = SpeRecord::new(0, 1, 1, 1 << 40, OpKind::Load, DataSource::L2);
        assert_eq!(rec.latency, u16::MAX);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(SpeRecord::decode(&[0u8; 10]).is_none());
        assert!(decode_nmo_fields(&[0u8; 63]).is_none());
    }

    #[test]
    fn incremental_decoder_yields_valid_records_and_counts_skips() {
        let good = sample();
        let mut corrupt = sample().encode();
        corrupt[30] = 0x00; // break the vaddr header
        let mut data = Vec::new();
        data.extend_from_slice(&good.encode());
        data.extend_from_slice(&corrupt);
        data.extend_from_slice(&good.encode());
        data.extend_from_slice(&[0xabu8; 17]); // trailing partial record

        let mut iter = decode_records(&data);
        assert_eq!(iter.remaining_capacity(), 3);
        let first = iter.next().unwrap();
        assert_eq!(first.vaddr, good.vaddr);
        assert_eq!(first.ticks, good.timestamp);
        assert_eq!(first.full, Some(good));
        let second = iter.next().unwrap();
        assert_eq!(second.vaddr, good.vaddr);
        assert!(iter.next().is_none());
        assert_eq!(iter.skipped(), 2, "one corrupt record and one trailing partial");
        assert_eq!(iter.decoded(), 2);
        assert_eq!(iter.skipped_bytes(), 64 + 17, "one full skip plus the 17-byte tail");
        assert_eq!(
            iter.decoded() * SPE_RECORD_BYTES as u64 + iter.skipped_bytes(),
            data.len() as u64,
            "accounting covers every byte"
        );
        assert!(iter.next().is_none(), "exhausted iterator stays exhausted");
        assert_eq!(iter.skipped(), 2, "skip count does not grow after exhaustion");
        assert_eq!(iter.skipped_bytes(), 64 + 17, "byte count does not grow after exhaustion");
    }

    #[test]
    fn incremental_decoder_on_empty_chunk() {
        let mut iter = decode_records(&[]);
        assert!(iter.next().is_none());
        assert_eq!(iter.skipped(), 0);
    }

    #[test]
    fn incremental_decoder_nmo_fields_survive_rich_packet_corruption() {
        // Mangle only the data-source packet: NMO's two fields still decode,
        // the full decode does not.
        let mut bytes = sample().encode();
        bytes[8] = 0x00;
        let rec = decode_records(&bytes).next().unwrap();
        assert_eq!(rec.vaddr, sample().vaddr);
        assert!(rec.full.is_none());
    }

    #[test]
    fn load_sources_encoded() {
        for source in all_sources() {
            let rec = SpeRecord::new(1, 2, 3, 10, OpKind::Load, source);
            let back = SpeRecord::decode(&rec.encode()).unwrap();
            assert_eq!(back.source, source);
            assert!(!back.is_store);
        }
    }
}
