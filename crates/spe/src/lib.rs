//! # spe — a model of the ARM Statistical Profiling Extension
//!
//! ARM SPE (Armv8.2+) is the precise-event-sampling facility the paper's NMO
//! profiler builds on. Real SPE hardware works as follows (paper Section
//! II-A, Figure 1):
//!
//! 1. a *sampling interval counter* is loaded with the user-configured
//!    sampling period and decremented as operations are decoded; when it
//!    reaches zero (plus a small random perturbation to avoid bias) the next
//!    operation is selected as a sample;
//! 2. the selected operation is tracked through the execution pipeline,
//!    collecting timings, events, the data virtual address, and the memory
//!    level that served it — if a new sample is selected before the previous
//!    one has finished, the new sample is dropped and a *collision* is
//!    recorded;
//! 3. the finished record is matched against programmable *filters* (operation
//!    type, minimum latency); surviving records are written to the *aux
//!    buffer* as a sequence of packets;
//! 4. when enough data accumulates (the `aux_watermark`), the CPU raises an
//!    interrupt and the kernel publishes a `PERF_RECORD_AUX` record into the
//!    perf ring buffer so the profiler can drain the data. If the aux buffer
//!    fills before the profiler catches up, records are dropped and the AUX
//!    record is flagged truncated/collided.
//!
//! This crate reproduces that machinery in software on top of the `arch-sim`
//! machine (which supplies the operation stream and per-access memory
//! outcomes) and the `perf-sub` substrate (which supplies the buffers,
//! records and wakeups). The [`driver::SpeDriver`] type plays the role of the
//! hardware + kernel driver: it implements `arch_sim::OpObserver`, so
//! attaching it to a simulated core is the equivalent of `perf_event_open`
//! with PMU type `0x2c` on that core.
//!
//! The time overhead of profiling is modelled explicitly (see
//! [`driver::OverheadModel`]): writing records, servicing watermark
//! interrupts, and draining buffers all charge cycles to the profiled core or
//! delay the availability of aux space, which is how the paper's sensitivity
//! results (Figures 8–11) are reproduced.

#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod packet;
pub mod stats;
pub mod unit;

pub use config::SpeConfig;
pub use driver::{OverheadModel, SpeDriver};
pub use packet::{SpeRecord, SPE_RECORD_BYTES};
pub use stats::{SpeStats, SpeStatsSnapshot};
pub use unit::{SampleOutcome, SamplerUnit};
