//! Shared SPE sampling statistics.
//!
//! The sensitivity study in the paper (Section VII) reports, per run: the
//! number of processed samples, the number of sample collisions
//! (`PERF_AUX_FLAG_COLLISION`), and derived accuracy/overhead. The sampling
//! unit and driver update a [`SpeStats`] instance (shared via `Arc` with the
//! NMO runtime) as they work; [`SpeStatsSnapshot`] is a plain-old-data copy
//! for reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomically updated sampling statistics for one SPE event (one core).
#[derive(Debug, Default)]
pub struct SpeStats {
    /// Operations belonging to the sampled population (matched the op-type
    /// configuration) that were seen while the event was enabled.
    pub population_ops: AtomicU64,
    /// Samples selected by the interval counter.
    pub samples_selected: AtomicU64,
    /// Sample records written to the aux buffer.
    pub records_written: AtomicU64,
    /// Samples dropped because the previous sample was still being tracked.
    pub collisions: AtomicU64,
    /// Records discarded by the latency/op filters after tracking.
    pub filtered_out: AtomicU64,
    /// Records dropped because the aux buffer was full (truncation).
    pub truncated_records: AtomicU64,
    /// Watermark interrupts raised.
    pub interrupts: AtomicU64,
    /// Bytes written to the aux buffer.
    pub aux_bytes_written: AtomicU64,
    /// Cycles of profiling overhead charged to the profiled core.
    pub overhead_cycles: AtomicU64,
}

/// A point-in-time copy of [`SpeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeStatsSnapshot {
    /// See [`SpeStats::population_ops`].
    pub population_ops: u64,
    /// See [`SpeStats::samples_selected`].
    pub samples_selected: u64,
    /// See [`SpeStats::records_written`].
    pub records_written: u64,
    /// See [`SpeStats::collisions`].
    pub collisions: u64,
    /// See [`SpeStats::filtered_out`].
    pub filtered_out: u64,
    /// See [`SpeStats::truncated_records`].
    pub truncated_records: u64,
    /// See [`SpeStats::interrupts`].
    pub interrupts: u64,
    /// See [`SpeStats::aux_bytes_written`].
    pub aux_bytes_written: u64,
    /// See [`SpeStats::overhead_cycles`].
    pub overhead_cycles: u64,
}

impl SpeStats {
    /// Create a fresh, shareable statistics block.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Take a snapshot of the current values.
    pub fn snapshot(&self) -> SpeStatsSnapshot {
        SpeStatsSnapshot {
            // relaxed-ok: the whole block is monotone emulation-statistics
            // counters; snapshots tolerate mid-run skew and are exact once
            // the emulated cores have joined.
            population_ops: self.population_ops.load(Ordering::Relaxed),
            samples_selected: self.samples_selected.load(Ordering::Relaxed), // relaxed-ok: as above
            records_written: self.records_written.load(Ordering::Relaxed),   // relaxed-ok: as above
            collisions: self.collisions.load(Ordering::Relaxed),             // relaxed-ok: as above
            filtered_out: self.filtered_out.load(Ordering::Relaxed),         // relaxed-ok: as above
            truncated_records: self.truncated_records.load(Ordering::Relaxed), // relaxed-ok: as above
            interrupts: self.interrupts.load(Ordering::Relaxed), // relaxed-ok: as above
            aux_bytes_written: self.aux_bytes_written.load(Ordering::Relaxed), // relaxed-ok: as above
            overhead_cycles: self.overhead_cycles.load(Ordering::Relaxed), // relaxed-ok: as above
        }
    }

    pub(crate) fn add(&self, field: &AtomicU64, n: u64) {
        // relaxed-ok: statistics counter increment; see `snapshot`.
        field.fetch_add(n, Ordering::Relaxed);
    }
}

impl SpeStatsSnapshot {
    /// Sum two snapshots (e.g. across cores).
    pub fn merge(&mut self, other: &SpeStatsSnapshot) {
        self.population_ops += other.population_ops;
        self.samples_selected += other.samples_selected;
        self.records_written += other.records_written;
        self.collisions += other.collisions;
        self.filtered_out += other.filtered_out;
        self.truncated_records += other.truncated_records;
        self.interrupts += other.interrupts;
        self.aux_bytes_written += other.aux_bytes_written;
        self.overhead_cycles += other.overhead_cycles;
    }

    /// Fraction of selected samples that were lost before reaching the aux
    /// buffer (collisions + filter + truncation).
    pub fn loss_fraction(&self) -> f64 {
        if self.samples_selected == 0 {
            return 0.0;
        }
        1.0 - self.records_written as f64 / self.samples_selected as f64
    }

    /// The change since an earlier snapshot of the same (monotonically
    /// increasing) statistics: per-drain loss accounting for a streaming
    /// consumer. Fields use saturating subtraction so a stale `earlier`
    /// cannot underflow.
    pub fn delta(&self, earlier: &SpeStatsSnapshot) -> SpeStatsSnapshot {
        SpeStatsSnapshot {
            population_ops: self.population_ops.saturating_sub(earlier.population_ops),
            samples_selected: self.samples_selected.saturating_sub(earlier.samples_selected),
            records_written: self.records_written.saturating_sub(earlier.records_written),
            collisions: self.collisions.saturating_sub(earlier.collisions),
            filtered_out: self.filtered_out.saturating_sub(earlier.filtered_out),
            truncated_records: self.truncated_records.saturating_sub(earlier.truncated_records),
            interrupts: self.interrupts.saturating_sub(earlier.interrupts),
            aux_bytes_written: self.aux_bytes_written.saturating_sub(earlier.aux_bytes_written),
            overhead_cycles: self.overhead_cycles.saturating_sub(earlier.overhead_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let stats = SpeStats::new_shared();
        stats.add(&stats.samples_selected, 10);
        stats.add(&stats.records_written, 8);
        stats.add(&stats.collisions, 2);
        let a = stats.snapshot();
        assert_eq!(a.samples_selected, 10);
        assert!((a.loss_fraction() - 0.2).abs() < 1e-12);

        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged.samples_selected, 20);
        assert_eq!(merged.records_written, 16);
        assert_eq!(merged.collisions, 4);
    }

    #[test]
    fn loss_fraction_zero_when_no_samples() {
        assert_eq!(SpeStatsSnapshot::default().loss_fraction(), 0.0);
    }

    #[test]
    fn delta_between_snapshots_is_per_drain_accounting() {
        let stats = SpeStats::new_shared();
        stats.add(&stats.samples_selected, 10);
        stats.add(&stats.records_written, 8);
        let first = stats.snapshot();
        stats.add(&stats.samples_selected, 5);
        stats.add(&stats.records_written, 3);
        stats.add(&stats.truncated_records, 2);
        let second = stats.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.samples_selected, 5);
        assert_eq!(d.records_written, 3);
        assert_eq!(d.truncated_records, 2);
        assert!((d.loss_fraction() - 0.4).abs() < 1e-12, "per-drain loss, not cumulative");
        // A stale "earlier" saturates instead of underflowing.
        assert_eq!(first.delta(&second).samples_selected, 0);
    }
}
