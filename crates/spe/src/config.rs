//! SPE sampling configuration and its encoding into `perf_event_attr`.
//!
//! NMO configures SPE exclusively through the perf ABI (paper Section IV-A):
//! the PMU type is `0x2c`, the `config` field selects which operation types
//! are sampled (loads, stores, branches — NMO excludes branches due to known
//! Neoverse sampling-bias errata), and `sample_period` holds the interval
//! counter reload value. This module converts between that encoding and a
//! typed [`SpeConfig`].

use perf_sub::attr::{
    PerfEventAttr, PERF_TYPE_ARM_SPE, SPE_CONFIG_BRANCH_FILTER, SPE_CONFIG_LOAD_FILTER,
    SPE_CONFIG_STORE_FILTER, SPE_CONFIG_TS_ENABLE,
};

use arch_sim::OpKind;

/// Typed SPE sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeConfig {
    /// Sampling period: operations between samples (interval counter reload).
    pub sample_period: u64,
    /// Maximum random perturbation subtracted from the reload value to avoid
    /// lock-step bias (hardware uses a small LFSR; we default to
    /// `min(period/16, 64)` operations).
    pub jitter_ops: u64,
    /// Sample load operations.
    pub sample_loads: bool,
    /// Sample store operations.
    pub sample_stores: bool,
    /// Sample branch operations (off in NMO).
    pub sample_branches: bool,
    /// Emit timestamp packets.
    pub timestamps: bool,
    /// Discard records whose total latency is below this many cycles.
    pub min_latency: u64,
    /// Aux watermark in bytes: how much aux data accumulates before a
    /// `PERF_RECORD_AUX` record is published and pollers are woken. 0 keeps
    /// the kernel default (half the aux buffer). Streaming profilers lower
    /// this so data reaches the monitor with bounded lag — at the cost of
    /// more watermark interrupts, which the overhead model charges.
    pub aux_watermark: u64,
}

impl SpeConfig {
    /// NMO's default configuration: loads + stores with timestamps at the
    /// given period, no latency filter, branches excluded.
    pub fn loads_stores(sample_period: u64) -> Self {
        SpeConfig {
            sample_period,
            jitter_ops: default_jitter(sample_period),
            sample_loads: true,
            sample_stores: true,
            sample_branches: false,
            timestamps: true,
            min_latency: 0,
            aux_watermark: 0,
        }
    }

    /// Build from a `perf_event_attr` (the inverse of [`SpeConfig::to_attr`]).
    pub fn from_attr(attr: &PerfEventAttr) -> Option<Self> {
        if !attr.is_spe() {
            return None;
        }
        Some(SpeConfig {
            sample_period: attr.sample_period,
            jitter_ops: default_jitter(attr.sample_period),
            sample_loads: attr.samples_loads(),
            sample_stores: attr.samples_stores(),
            sample_branches: attr.samples_branches(),
            timestamps: attr.timestamps_enabled(),
            min_latency: attr.min_latency,
            aux_watermark: attr.aux_watermark,
        })
    }

    /// Encode into a `perf_event_attr` for `perf_event_open`.
    pub fn to_attr(&self) -> PerfEventAttr {
        let mut config = 0u64;
        if self.timestamps {
            config |= SPE_CONFIG_TS_ENABLE;
        }
        if self.sample_loads {
            config |= SPE_CONFIG_LOAD_FILTER;
        }
        if self.sample_stores {
            config |= SPE_CONFIG_STORE_FILTER;
        }
        if self.sample_branches {
            config |= SPE_CONFIG_BRANCH_FILTER;
        }
        PerfEventAttr {
            type_: PERF_TYPE_ARM_SPE,
            config,
            sample_period: self.sample_period,
            min_latency: self.min_latency,
            aux_watermark: self.aux_watermark,
            ..Default::default()
        }
    }

    /// Whether an operation of this kind belongs to the sampled population.
    pub fn samples_kind(&self, kind: OpKind) -> bool {
        match kind {
            OpKind::Load => self.sample_loads,
            OpKind::Store => self.sample_stores,
            OpKind::Branch => self.sample_branches,
            OpKind::Other => false,
        }
    }
}

fn default_jitter(period: u64) -> u64 {
    (period / 16).min(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_roundtrip() {
        let cfg = SpeConfig::loads_stores(4096);
        let attr = cfg.to_attr();
        assert_eq!(attr.config, 0x6_0000_0001, "matches the paper's example value");
        assert_eq!(attr.sample_period, 4096);
        let back = SpeConfig::from_attr(&attr).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn non_spe_attr_rejected() {
        let attr = PerfEventAttr::counting(0x13);
        assert!(SpeConfig::from_attr(&attr).is_none());
    }

    #[test]
    fn population_membership() {
        let cfg = SpeConfig::loads_stores(1000);
        assert!(cfg.samples_kind(OpKind::Load));
        assert!(cfg.samples_kind(OpKind::Store));
        assert!(!cfg.samples_kind(OpKind::Branch));
        assert!(!cfg.samples_kind(OpKind::Other));

        let mut with_branches = cfg;
        with_branches.sample_branches = true;
        assert!(with_branches.samples_kind(OpKind::Branch));
    }

    #[test]
    fn jitter_scales_with_period_but_is_capped() {
        assert_eq!(SpeConfig::loads_stores(160).jitter_ops, 10);
        assert_eq!(SpeConfig::loads_stores(4096).jitter_ops, 64);
        assert_eq!(SpeConfig::loads_stores(1 << 20).jitter_ops, 64);
    }
}
