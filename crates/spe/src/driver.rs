//! The SPE "kernel driver": buffer management, watermark interrupts,
//! truncation, and the profiling-overhead model.
//!
//! [`SpeDriver`] implements [`arch_sim::OpObserver`], so attaching it to a
//! simulated core is the software equivalent of `perf_event_open` with PMU
//! type `0x2c` bound to that core. It owns the per-core [`SamplerUnit`] and a
//! shared [`perf_sub::PerfEvent`] (ring buffer + aux buffer + waker) that the
//! NMO monitoring thread consumes.
//!
//! ## Overhead and loss model
//!
//! The paper's sensitivity study is driven by three mechanisms, all modelled
//! here in *simulated time* so the results are deterministic:
//!
//! * **Record cost** — every record written to the aux buffer charges
//!   [`OverheadModel::record_write_cycles`] to the profiled core (pipeline
//!   tracking + packet formation + buffer write). Samples dropped by a
//!   collision or a full buffer charge nothing, matching the paper's
//!   observation that dropped samples cost no time.
//! * **Watermark interrupts** — when `aux_watermark` bytes accumulate, a
//!   `PERF_RECORD_AUX` record is published, pollers are woken, and
//!   [`OverheadModel::interrupt_cycles`] are charged to the core.
//! * **Drain latency** — the space occupied by published data is only
//!   released after a service latency plus a per-byte processing time
//!   (modelling the NMO monitor thread catching up). If the core produces
//!   samples faster than this drain, the aux buffer fills and records are
//!   dropped as *truncated* — the dominant cause of the accuracy collapse at
//!   sampling periods below ~2000–3000 in Figure 8a, of the aux-buffer-size
//!   sensitivity in Figure 9, and (via the `PERF_AUX_FLAG_COLLISION` flag on
//!   the published records) of the collision counts in Figure 8c.
//!
//! In addition, SPE needs a minimum functional aux-buffer size
//! ([`OverheadModel::min_functional_aux_pages`], 4 pages on the paper's
//! testbed): below it the hardware produces no samples at all, which is why
//! the smallest buffer in Figure 9 shows the lowest overhead and zero
//! accuracy.

use std::collections::VecDeque;
use std::sync::Arc;

use arch_sim::{Machine, MemOutcome, ObserverCharge, Op, OpObserver};
use perf_sub::records::{
    AuxRecord, ItraceStartRecord, Record, PERF_AUX_FLAG_COLLISION, PERF_AUX_FLAG_TRUNCATED,
};
use perf_sub::{PerfError, PerfEvent};

use crate::config::SpeConfig;
use crate::packet::SPE_RECORD_BYTES;
use crate::stats::SpeStats;
use crate::unit::{SampleOutcome, SamplerUnit};

/// Tunable cost model for SPE profiling overhead (in core cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Cycles charged to the profiled core per record written to the aux
    /// buffer (pipeline tracking, packet formation, buffer write).
    pub record_write_cycles: u64,
    /// Cycles charged to the profiled core per watermark interrupt.
    pub interrupt_cycles: u64,
    /// Simulated monitor-thread processing speed: cycles per aux byte before
    /// the space is released back to the producer.
    pub drain_cycles_per_byte: f64,
    /// Fixed latency (scheduling + syscall + wakeup) before a published chunk
    /// starts draining, in cycles.
    pub drain_service_latency_cycles: u64,
    /// Minimum aux-buffer size, in pages, below which SPE produces nothing.
    pub min_functional_aux_pages: u64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            record_write_cycles: 400,
            interrupt_cycles: 12_000,
            drain_cycles_per_byte: 150.0,
            drain_service_latency_cycles: 4_500_000,
            min_functional_aux_pages: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRelease {
    release_at_cycle: u64,
    new_tail: u64,
}

/// Per-core SPE driver: sampling unit + perf event plumbing + overhead model.
pub struct SpeDriver {
    unit: SamplerUnit,
    event: Arc<PerfEvent>,
    stats: Arc<SpeStats>,
    model: OverheadModel,
    /// Aux offset where not-yet-published data begins.
    pending_start: u64,
    /// Bytes written but not yet published via `PERF_RECORD_AUX`.
    pending_bytes: u64,
    /// Flags accumulated for the next published AUX record.
    pending_flags: u64,
    /// Future aux-tail advances, ordered by release time.
    releases: VecDeque<PendingRelease>,
    /// Whether the aux buffer meets the minimum functional size.
    functional: bool,
}

impl std::fmt::Debug for SpeDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeDriver")
            .field("cpu", &self.event.cpu())
            .field("pending_bytes", &self.pending_bytes)
            .field("functional", &self.functional)
            .finish()
    }
}

impl SpeDriver {
    /// Create a driver bound to an already-opened SPE perf event.
    pub fn new(
        cfg: SpeConfig,
        event: Arc<PerfEvent>,
        stats: Arc<SpeStats>,
        model: OverheadModel,
        timeconv: arch_sim::TimeConv,
        seed: u64,
    ) -> Self {
        let functional =
            event.aux().map(|aux| aux.pages() >= model.min_functional_aux_pages).unwrap_or(false);
        let unit = SamplerUnit::new(cfg, stats.clone(), timeconv, seed);
        SpeDriver {
            unit,
            event,
            stats,
            model,
            pending_start: 0,
            pending_bytes: 0,
            pending_flags: 0,
            releases: VecDeque::new(),
            functional,
        }
    }

    /// `perf_event_open` analogue without attaching: open an SPE event for
    /// `core` on `machine`, allocate its buffers, and return the driver
    /// together with the handles the profiler needs (the shared event and
    /// statistics). The caller decides how the driver observes the core —
    /// directly via `Machine::set_observer`, or composed with other observers
    /// (e.g. `arch_sim::FanoutObserver`) when several backends share a core.
    ///
    /// `ring_pages` and `aux_pages` are in machine pages (64 KiB on the
    /// paper's testbed); `ring_pages` excludes the metadata page, mirroring
    /// NMO's `(N+1)`-page mmap.
    pub fn open_for(
        machine: &Machine,
        core: usize,
        cfg: SpeConfig,
        ring_pages: u64,
        aux_pages: u64,
        model: OverheadModel,
    ) -> Result<(SpeDriver, Arc<PerfEvent>, Arc<SpeStats>), PerfError> {
        let page_bytes = machine.config().page_bytes;
        let attr = cfg.to_attr();
        let event = PerfEvent::open_shared(attr, core, ring_pages, aux_pages, page_bytes)?;
        let timeconv = machine.timeconv();
        let (zero, shift, mult) = timeconv.perf_mmap_triple();
        event.meta().set_clock(zero, shift, mult);
        event.publish(Record::ItraceStart(ItraceStartRecord { pid: 1, tid: core as u32 + 1 }));

        let stats = SpeStats::new_shared();
        let driver =
            SpeDriver::new(cfg, event.clone(), stats.clone(), model, timeconv, core as u64);
        Ok((driver, event, stats))
    }

    /// [`SpeDriver::open_for`] plus attaching the driver as the core's sole
    /// observer — the historical one-call path.
    pub fn open_on(
        machine: &Machine,
        core: usize,
        cfg: SpeConfig,
        ring_pages: u64,
        aux_pages: u64,
        model: OverheadModel,
    ) -> Result<(Arc<PerfEvent>, Arc<SpeStats>), PerfError> {
        let (driver, event, stats) =
            Self::open_for(machine, core, cfg, ring_pages, aux_pages, model)?;
        machine.set_observer(core, Box::new(driver)).map_err(|e| {
            PerfError::InvalidAttr(format!("cannot attach SPE to core {core}: {e}"))
        })?;
        Ok((event, stats))
    }

    /// The shared perf event.
    pub fn event(&self) -> &Arc<PerfEvent> {
        &self.event
    }

    /// The shared statistics block.
    pub fn stats(&self) -> &Arc<SpeStats> {
        &self.stats
    }

    fn process_releases(&mut self, now_cycles: u64) {
        while let Some(front) = self.releases.front() {
            if front.release_at_cycle <= now_cycles {
                if let Some(aux) = self.event.aux() {
                    aux.advance_tail(front.new_tail, self.event.meta());
                }
                self.releases.pop_front();
            } else {
                break;
            }
        }
    }

    fn publish_pending(&mut self, now_cycles: u64) -> u64 {
        if self.pending_bytes == 0 && self.pending_flags == 0 {
            return 0;
        }
        let record = Record::Aux(AuxRecord {
            aux_offset: self.pending_start,
            aux_size: self.pending_bytes,
            flags: self.pending_flags,
        });
        self.event.publish(record);
        self.stats.add(&self.stats.interrupts, 1);

        // Schedule the space release (simulated monitor-thread drain). A
        // flags-only record (pending_bytes == 0, e.g. pure truncation at the
        // final drain) releases nothing.
        let new_tail = self.pending_start + self.pending_bytes;
        if self.pending_bytes > 0 {
            let drain_cycles = self.model.drain_service_latency_cycles
                + (self.pending_bytes as f64 * self.model.drain_cycles_per_byte) as u64;
            self.releases.push_back(PendingRelease {
                release_at_cycle: now_cycles + drain_cycles,
                new_tail,
            });
        }

        self.pending_start = new_tail;
        self.pending_bytes = 0;
        self.pending_flags = 0;
        self.model.interrupt_cycles
    }
}

impl OpObserver for SpeDriver {
    fn on_op(&mut self, op: &Op, outcome: Option<&MemOutcome>, now_cycles: u64) -> ObserverCharge {
        if !self.functional || !self.event.is_enabled() {
            return ObserverCharge::NONE;
        }
        self.process_releases(now_cycles);

        let record = match self.unit.on_op(op, outcome, now_cycles) {
            SampleOutcome::Record(rec) => rec,
            // Non-samples and dropped samples cost nothing (paper Section
            // VII-A: collided samples are discarded before filtering and
            // buffer writes, hence no time overhead).
            _ => return ObserverCharge::NONE,
        };

        let Some(aux) = self.event.aux() else {
            return ObserverCharge::NONE;
        };
        let bytes = record.encode();
        let mut charge = 0u64;
        match aux.write(&bytes, self.event.meta()) {
            Some(offset) => {
                if self.pending_bytes == 0 {
                    self.pending_start = offset;
                }
                self.pending_bytes += SPE_RECORD_BYTES as u64;
                self.stats.add(&self.stats.records_written, 1);
                self.stats.add(&self.stats.aux_bytes_written, SPE_RECORD_BYTES as u64);
                charge += self.model.record_write_cycles;

                if self.pending_bytes >= self.event.effective_aux_watermark() {
                    charge += self.publish_pending(now_cycles);
                }
            }
            None => {
                // Aux buffer full: the record is dropped. The next published
                // AUX record carries the truncation/collision flags, which is
                // what NMO counts (paper Section VII).
                self.stats.add(&self.stats.truncated_records, 1);
                self.pending_flags |= PERF_AUX_FLAG_TRUNCATED | PERF_AUX_FLAG_COLLISION;
            }
        }
        if charge > 0 {
            self.stats.add(&self.stats.overhead_cycles, charge);
        }
        ObserverCharge::cycles(charge)
    }

    fn on_detach(&mut self, now_cycles: u64) -> ObserverCharge {
        if !self.functional {
            return ObserverCharge::NONE;
        }
        // Final drain: publish whatever is pending so the monitor can process
        // it after program exit. The paper measures execution time up to the
        // end of `main`, so the final drain is not charged to the core.
        self.publish_pending(now_cycles);
        self.process_releases(u64::MAX);
        ObserverCharge::NONE
    }

    fn on_flush(&mut self, now_cycles: u64) -> ObserverCharge {
        if !self.functional {
            return ObserverCharge::NONE;
        }
        // Window-boundary flush for streaming consumers: publish sub-watermark
        // data so the monitor sees it mid-run. Unlike the watermark interrupt
        // this is driven from the profiler side, so the interrupt cost is
        // charged like any other publication.
        self.process_releases(now_cycles);
        let charge = self.publish_pending(now_cycles);
        if charge > 0 {
            self.stats.add(&self.stats.overhead_cycles, charge);
        }
        ObserverCharge::cycles(charge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;
    use perf_sub::records::Record;

    fn fast_model() -> OverheadModel {
        OverheadModel {
            record_write_cycles: 10,
            interrupt_cycles: 100,
            drain_cycles_per_byte: 0.1,
            drain_service_latency_cycles: 10,
            min_functional_aux_pages: 4,
        }
    }

    #[test]
    fn open_on_attaches_and_publishes_itrace_start() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = SpeConfig::loads_stores(100);
        let (event, _stats) =
            SpeDriver::open_on(&machine, 0, cfg, 8, 16, OverheadModel::default()).unwrap();
        match event.next_record().unwrap() {
            Some(Record::ItraceStart(s)) => assert_eq!(s.tid, 1),
            other => panic!("expected ItraceStart, got {other:?}"),
        }
        // Observer is attached to the core.
        assert!(machine.take_observer(0).unwrap().is_some());
    }

    #[test]
    fn records_flow_into_aux_and_aux_records_into_ring() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(10) };
        let (event, stats) = SpeDriver::open_on(&machine, 0, cfg, 8, 16, fast_model()).unwrap();
        // Consume the ItraceStart record.
        let _ = event.next_record().unwrap();

        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..10_000u64 {
                e.load(region.start + i * 8, 8);
            }
        }
        let snap = stats.snapshot();
        assert!(snap.records_written >= 900, "snap={snap:?}");
        assert!(snap.aux_bytes_written >= 900 * 64);
        assert!(snap.interrupts >= 1, "final drain publishes at least once");

        // NMO side: AUX records are readable and point at valid data.
        let mut aux_bytes_seen = 0;
        while let Some(rec) = event.next_record().unwrap() {
            if let Record::Aux(a) = rec {
                aux_bytes_seen += a.aux_size;
                let data = event.aux().unwrap().read_at(a.aux_offset, a.aux_size);
                assert_eq!(data.len() as u64 % 64, 0);
            }
        }
        assert_eq!(aux_bytes_seen, snap.aux_bytes_written);
    }

    #[test]
    fn tiny_aux_buffer_disables_sampling() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(10) };
        // 2 pages < min_functional_aux_pages (4).
        let (_event, stats) = SpeDriver::open_on(&machine, 0, cfg, 8, 2, fast_model()).unwrap();
        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..10_000u64 {
                e.load(region.start + i * 8, 8);
            }
        }
        let snap = stats.snapshot();
        assert_eq!(snap.records_written, 0);
        assert_eq!(snap.overhead_cycles, 0, "a non-functional SPE costs nothing");
    }

    #[test]
    fn slow_drain_causes_truncation() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(2) };
        let model = OverheadModel {
            record_write_cycles: 1,
            interrupt_cycles: 1,
            // Slower than production on purpose.
            drain_cycles_per_byte: 10_000.0,
            drain_service_latency_cycles: 1_000_000,
            min_functional_aux_pages: 4,
        };
        // Small aux buffer: 4 pages of 4 KiB = 256 records.
        let (_event, stats) = SpeDriver::open_on(&machine, 0, cfg, 8, 4, model).unwrap();
        let region = machine.alloc("data", 1 << 22).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..100_000u64 {
                e.load(region.start + (i * 64) % (1 << 22), 8);
            }
        }
        let snap = stats.snapshot();
        assert!(snap.truncated_records > 0, "snap={snap:?}");
        assert!(snap.records_written < snap.samples_selected, "some selected samples must be lost");
    }

    #[test]
    fn flush_publishes_sub_watermark_data() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(100) };
        let (event, stats) = SpeDriver::open_on(&machine, 0, cfg, 8, 16, fast_model()).unwrap();
        let _ = event.next_record().unwrap(); // ItraceStart
        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            // Few enough samples that the watermark never triggers.
            for i in 0..2_000u64 {
                e.load(region.start + i * 8, 8);
            }
            assert!(stats.snapshot().records_written > 0);
            assert_eq!(event.drain().count(), 0, "nothing published before the flush");
            e.flush_observer();
        }
        let published: u64 = event
            .drain()
            .filter_map(|r| match r {
                Record::Aux(a) => Some(a.aux_size),
                _ => None,
            })
            .sum();
        assert_eq!(published, stats.snapshot().aux_bytes_written);
    }

    #[test]
    fn disabled_event_produces_nothing() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(10) };
        let (event, stats) = SpeDriver::open_on(&machine, 0, cfg, 8, 16, fast_model()).unwrap();
        event.disable();
        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..1000u64 {
                e.load(region.start + i * 8, 8);
            }
        }
        assert_eq!(stats.snapshot().records_written, 0);
    }

    #[test]
    fn overhead_scales_with_sample_count() {
        let machine = Machine::new(MachineConfig::small_test());
        let region = machine.alloc("data", 1 << 20).unwrap();
        let mut overheads = Vec::new();
        for (core, period) in [(0usize, 10u64), (1, 100)] {
            let cfg = SpeConfig { jitter_ops: 0, ..SpeConfig::loads_stores(period) };
            let (_event, stats) =
                SpeDriver::open_on(&machine, core, cfg, 8, 16, fast_model()).unwrap();
            {
                let mut e = machine.attach(core).unwrap();
                for i in 0..50_000u64 {
                    e.load(region.start + (i % 1000) * 8, 8);
                }
            }
            overheads.push(stats.snapshot().overhead_cycles);
        }
        assert!(
            overheads[0] > overheads[1] * 5,
            "10x more samples should cost much more: {overheads:?}"
        );
    }
}
