//! Fixture for `no-println-in-lib`: `println!`/`print!` in library code
//! are findings; `eprintln!` and writes to an explicit sink are clean.

pub fn report(x: u32) {
    println!("x = {x}");
    print!("trailing");
    eprintln!("diagnostics may go to stderr");
}

pub fn report_to(mut w: impl std::fmt::Write, x: u32) {
    let _ = writeln!(w, "x = {x}");
}
