// nmo-lint: allow-file(no-println-in-lib)
//! Fixture for suppression syntax: the file-level allow silences every
//! `println!` here; the line-level allow silences exactly one unwrap, so
//! the second unwrap is this file's only expected finding.

pub fn prints(x: u32) {
    println!("file-level allow covers this: {x}");
    println!("and this");
}

pub fn unwraps(v: Option<u32>) -> u32 {
    // nmo-lint: allow(no-unwrap-in-lib)
    let a = v.unwrap();
    let b = v.unwrap();
    a + b
}
