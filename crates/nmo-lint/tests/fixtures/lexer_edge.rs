//! Fixture of lexer edge cases. Every "violation" below lives inside a
//! string literal or a comment, so a correct lexer reports NOTHING for this
//! file; any finding means a literal/comment boundary was mis-tracked.

/* nested /* block */ comments: println!("not code"); v.unwrap(); */

pub fn decoys() -> Vec<String> {
    vec![
        "println!(\"in a plain string\")".to_string(),
        r#"raw string: x.unwrap() and Ordering::Relaxed"#.to_string(),
        r##"nested fence: r#"inner"# mpsc::channel()"##.to_string(),
        String::from_utf8_lossy(b"byte string: a.lock(); b.lock();").into_owned(),
    ]
}

pub fn char_literals() -> (char, char, char, u8, &'static str) {
    // The quote/punctuation char literals must not open phantom strings,
    // and `'a` in the return type above must lex as a lifetime, not a char.
    ('"', '\'', ' ', b'\\', "done")
}
