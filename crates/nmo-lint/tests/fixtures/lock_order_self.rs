//! Fixture: re-locking a mutex already held on the same path — guaranteed
//! self-deadlock under std-backed locks.

use parking_lot::Mutex;

pub struct Cell {
    inner: Mutex<u32>,
}

impl Cell {
    pub fn double_lock(&self) -> u32 {
        let first = self.inner.lock();
        let second = self.inner.lock();
        *first + *second
    }
}
