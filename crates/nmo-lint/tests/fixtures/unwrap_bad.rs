//! Fixture for `no-unwrap-in-lib`: one naked unwrap and one naked expect
//! (both findings), one justified expect and one suppressed unwrap (clean).

pub fn naked_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn naked_expect(v: Option<u32>) -> u32 {
    v.expect("always set")
}

pub fn justified(v: Option<u32>) -> u32 {
    // unwrap-ok: `v` is produced by `naked_unwrap`'s caller with Some.
    v.expect("set by construction")
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // nmo-lint: allow(no-unwrap-in-lib)
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
