//! Fixture for `bounded-channel`: unbounded std mpsc construction is a
//! finding; `sync_channel` (bounded) is clean.

use std::sync::mpsc;

pub fn unbounded_queue() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}

pub fn bounded_queue() -> (mpsc::SyncSender<u32>, mpsc::Receiver<u32>) {
    mpsc::sync_channel(128)
}
