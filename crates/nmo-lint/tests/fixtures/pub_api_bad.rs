//! Fixture for `pub-api-result` (loaded with a `crates/nmo/src/...`
//! relative path by the integration tests): a public function constructing
//! `NmoError` without surfacing a `Result` is a finding; `Result`-returning
//! and non-public functions are clean.

use crate::NmoError;

pub fn swallows_error(ok: bool) -> u32 {
    if !ok {
        let _ = NmoError::Config("dropped on the floor".into());
    }
    7
}

pub fn surfaces_error(ok: bool) -> Result<u32, NmoError> {
    if !ok {
        return Err(NmoError::Config("surfaced".into()));
    }
    Ok(7)
}

pub(crate) fn internal(ok: bool) -> u32 {
    if !ok {
        let _ = NmoError::Config("internal plumbing".into());
    }
    7
}
