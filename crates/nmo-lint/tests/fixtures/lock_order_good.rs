//! Fixture: consistent `alpha` -> `beta` ordering everywhere, plus the two
//! exempt patterns — dropping the first guard before taking the second, and
//! reverse order via non-blocking `try_lock`.

use parking_lot::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let mut b = self.beta.lock();
        *b += *a;
    }

    pub fn hand_over_hand(&self) {
        let a = self.alpha.lock();
        let x = *a;
        drop(a);
        // `alpha` was released above, so this acquisition holds nothing:
        // no beta-while-alpha edge, and no alpha -> beta edge either.
        let mut b = self.beta.lock();
        *b += x;
    }

    pub fn reverse_but_try(&self) {
        let b = self.beta.lock();
        if let Some(mut a) = self.alpha.try_lock() {
            *a += *b;
        }
    }
}
