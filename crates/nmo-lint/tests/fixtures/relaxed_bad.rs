//! Fixture for `relaxed-atomics-audit`: an unjustified `Ordering::Relaxed`
//! (finding), a justified one and a multi-line call justified at the
//! statement head (clean).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn justified(c: &AtomicU64) -> u64 {
    // relaxed-ok: statistics counter, no ordering dependency.
    c.load(Ordering::Relaxed)
}

pub fn justified_multiline(c: &AtomicU64) -> bool {
    // relaxed-ok: value-only CAS loop; the id is its own payload.
    c.compare_exchange(
        0,
        1,
        Ordering::Relaxed,
        Ordering::Relaxed,
    )
    .is_ok()
}
