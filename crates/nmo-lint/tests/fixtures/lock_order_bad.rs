//! Fixture: two call paths acquire `alpha` and `beta` in opposite orders —
//! the `lock-order` lint must report a cycle (error severity).

use parking_lot::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let mut b = self.beta.lock();
        *b += *a;
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let mut a = self.alpha.lock();
        *a += *b;
    }
}
