//! Integration tests: each fixture under `tests/fixtures/` is linted as
//! library code and must produce exactly the findings it was written to
//! seed — these pin the acceptance criteria that `nmo-lint --deny-warnings`
//! exits non-zero on the bad fixtures and zero on the clean ones, and that
//! the real workspace is clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use nmo_lint::{lint_workspace, load_file, run_lints, Diagnostic, FileKind, Severity};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Lint one fixture as library code. `rel` is the workspace-relative path
/// the lints see — `pub-api-result` keys off it.
fn lint_fixture_as(name: &str, rel: &str) -> Vec<Diagnostic> {
    let file = load_file(&fixture_path(name), rel, FileKind::Lib).expect("fixture readable");
    run_lints(&[file])
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    lint_fixture_as(name, &format!("fixtures/{name}"))
}

fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.lint).collect()
}

#[test]
fn lock_order_cycle_is_an_error() {
    let diags = lint_fixture("lock_order_bad.rs");
    assert_eq!(ids(&diags), ["lock-order"], "{diags:#?}");
    assert_eq!(diags[0].severity, Severity::Error);
    let msg = &diags[0].message;
    assert!(msg.contains("alpha") && msg.contains("beta"), "cycle names both locks: {msg}");
}

#[test]
fn consistent_lock_order_is_clean() {
    let diags = lint_fixture("lock_order_good.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn self_deadlock_is_an_error() {
    let diags = lint_fixture("lock_order_self.rs");
    assert_eq!(ids(&diags), ["lock-order"], "{diags:#?}");
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("self-deadlock"), "{}", diags[0].message);
}

#[test]
fn unwrap_fixture_flags_only_naked_sites() {
    let diags = lint_fixture("unwrap_bad.rs");
    assert_eq!(ids(&diags), ["no-unwrap-in-lib", "no-unwrap-in-lib"], "{diags:#?}");
    // The two *naked* sites, not the justified/suppressed/test ones.
    assert_eq!(diags[0].line, 5, "{diags:#?}");
    assert_eq!(diags[1].line, 9, "{diags:#?}");
}

#[test]
fn relaxed_fixture_flags_only_unjustified_site() {
    let diags = lint_fixture("relaxed_bad.rs");
    assert_eq!(ids(&diags), ["relaxed-atomics-audit"], "{diags:#?}");
    assert_eq!(diags[0].line, 8, "{diags:#?}");
}

#[test]
fn unbounded_channel_is_flagged() {
    let diags = lint_fixture("channel_bad.rs");
    assert_eq!(ids(&diags), ["bounded-channel"], "{diags:#?}");
    assert_eq!(diags[0].line, 7, "sync_channel must not be flagged: {diags:#?}");
}

#[test]
fn println_fixture_flags_stdout_macros_only() {
    let diags = lint_fixture("println_bad.rs");
    assert_eq!(ids(&diags), ["no-println-in-lib", "no-println-in-lib"], "{diags:#?}");
    assert_eq!((diags[0].line, diags[1].line), (5, 6), "{diags:#?}");
}

#[test]
fn pub_api_result_keys_off_the_nmo_crate_path() {
    // Under a crates/nmo/src path the error-swallowing pub fn is flagged...
    let diags = lint_fixture_as("pub_api_bad.rs", "crates/nmo/src/fixture.rs");
    assert_eq!(ids(&diags), ["pub-api-result"], "{diags:#?}");
    assert!(diags[0].message.contains("swallows_error"), "{}", diags[0].message);
    // ...and under any other path the lint does not apply at all.
    let elsewhere = lint_fixture("pub_api_bad.rs");
    assert!(elsewhere.is_empty(), "{elsewhere:#?}");
}

#[test]
fn lexer_edge_cases_produce_no_findings() {
    let diags = lint_fixture("lexer_edge.rs");
    assert!(diags.is_empty(), "decoys inside strings/comments leaked: {diags:#?}");
}

#[test]
fn suppression_comments_silence_exactly_their_targets() {
    let diags = lint_fixture("suppress.rs");
    assert_eq!(ids(&diags), ["no-unwrap-in-lib"], "{diags:#?}");
    assert_eq!(diags[0].line, 14, "only the un-suppressed unwrap: {diags:#?}");
}

/// The acceptance criterion for the satellite fix-up pass: the workspace
/// itself is lint-clean (so `--deny-warnings` exits 0 in CI).
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint_workspace(&root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace must stay lint-clean; run `cargo run -p nmo-lint` for details:\n{}",
        diags.iter().map(|d| d.human()).collect::<Vec<_>>().join("\n")
    );
}

/// Exit-code contract of the CLI, pinned end-to-end on real fixtures:
/// 1 for a bad fixture under `--deny-warnings`, 0 for a clean one.
#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_nmo-lint");
    let run = |fixture: &str| {
        Command::new(bin)
            .arg("--assume-lib")
            .arg("--deny-warnings")
            .arg(fixture_path(fixture))
            .output()
            .expect("nmo-lint runs")
    };

    let bad = run("unwrap_bad.rs");
    assert_eq!(bad.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&bad.stdout));
    let good = run("lock_order_good.rs");
    assert_eq!(good.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&good.stdout));

    // Errors fail even without --deny-warnings.
    let cycle = Command::new(bin)
        .arg("--assume-lib")
        .arg(fixture_path("lock_order_bad.rs"))
        .output()
        .expect("nmo-lint runs");
    assert_eq!(cycle.status.code(), Some(1));

    // JSON output is one object per line with the lint id.
    let json = Command::new(bin)
        .args(["--assume-lib", "--format", "json"])
        .arg(fixture_path("channel_bad.rs"))
        .output()
        .expect("nmo-lint runs");
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.lines().any(|l| l.contains("\"lint\":\"bounded-channel\"")), "{stdout}");
}
