//! The repo-specific lints.
//!
//! Every lint works on the token stream from [`crate::lexer`]; none of them
//! parse full Rust. The patterns are chosen so the approximation errs
//! toward *silence* on code it cannot understand (an unrecognised receiver
//! shape is skipped, not guessed), and the fixture suite pins both the
//! hits and the non-hits.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, FileKind, Lint, Severity, SourceFile};

fn diag(
    lint: &'static str,
    severity: Severity,
    file: &SourceFile,
    tok: &Token,
    message: String,
) -> Diagnostic {
    Diagnostic { lint, severity, file: file.rel.clone(), line: tok.line, col: tok.col, message }
}

/// `lock-order` — build the static lock-acquisition graph and fail on
/// cycles.
///
/// The model: an acquisition is `<name>.lock()`; the guard is *bound* when
/// the call is the entire right-hand side of a `let` (`let g = m.lock();`),
/// in which case it is held until `drop(g)` or the end of its block, and
/// *temporary* otherwise (held to the end of the statement). While any
/// guard is held, acquiring another lock records the edge
/// `held → acquired`. Locks are identified by receiver field/variable name
/// (`self.coordinator.lock()` → `coordinator`) — a deliberate
/// approximation: the runtime checker in `compat/parking_lot`
/// (`NMO_LOCK_CHECK=1`) tracks real lock instances and covers the
/// interprocedural orders this pass cannot see.
pub struct LockOrder;

#[derive(Debug)]
struct HeldGuard {
    lock: String,
    /// `Some((var, depth))` for a bound guard: released by `drop(var)` or
    /// when the brace depth drops below `depth`. `None` for a temporary:
    /// released at the next `;` at its paren depth.
    binding: Option<(String, usize)>,
    paren_depth: usize,
    line: u32,
}

#[derive(Default)]
struct LockGraph {
    /// `held → acquired` with one witness site per edge.
    edges: BTreeMap<String, BTreeMap<String, (String, u32)>>,
}

impl Lint for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }
    fn description(&self) -> &'static str {
        "static lock-acquisition graph over named locks must be acyclic"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check_workspace(&self, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
        let mut graph = LockGraph::default();
        for file in files {
            if matches!(file.kind, FileKind::Lib | FileKind::Bin) {
                self.scan_file(file, &mut graph, diags);
            }
        }
        report_cycles(&graph, diags);
    }
}

impl LockOrder {
    fn scan_file(&self, file: &SourceFile, graph: &mut LockGraph, diags: &mut Vec<Diagnostic>) {
        let toks = &file.tokens;
        let mut held: Vec<HeldGuard> = Vec::new();
        let mut brace_depth = 0usize;
        let mut paren_depth = 0usize;
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct('{') {
                brace_depth += 1;
                // A block open ends the preceding expression statement (an
                // `if cond {` condition's temporaries die here). `match`
                // scrutinee temporaries actually outlive this in real Rust,
                // which errs toward silence — the runtime checker covers it.
                held.retain(|g| g.binding.is_some());
            } else if t.is_punct('}') {
                brace_depth = brace_depth.saturating_sub(1);
                // A block close releases bound guards scoped inside it and
                // any temporary (an expression-form tail like
                // `self.inner.lock().head` has no `;` — the guard dies with
                // the enclosing block).
                held.retain(|g| match &g.binding {
                    Some((_, depth)) => *depth <= brace_depth,
                    None => false,
                });
            } else if t.is_punct('(') {
                paren_depth += 1;
            } else if t.is_punct(')') {
                paren_depth = paren_depth.saturating_sub(1);
            } else if t.is_punct(';') {
                // A temporary guard dies at the first `;` at or below the
                // paren depth it was created at (a `;` deeper inside a
                // closure argument does not end the outer statement).
                held.retain(|g| g.binding.is_some() || g.paren_depth < paren_depth);
            } else if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                let var = &toks[i + 2].text;
                held.retain(|g| g.binding.as_ref().map(|(v, _)| v != var).unwrap_or(true));
                i += 4;
                continue;
            } else if let Some((lock, site)) = match_acquisition(toks, i) {
                if !file.in_test_code(site.line) && !file.is_allowed(self.id(), site.line) {
                    for g in &held {
                        if g.lock == lock {
                            diags.push(diag(
                                self.id(),
                                Severity::Error,
                                file,
                                site,
                                format!(
                                    "lock `{lock}` acquired while already held \
                                     (first at line {}): self-deadlock",
                                    g.line
                                ),
                            ));
                        } else {
                            graph
                                .edges
                                .entry(g.lock.clone())
                                .or_default()
                                .entry(lock.clone())
                                .or_insert_with(|| (file.rel.clone(), site.line));
                        }
                    }
                    let binding = binding_of(toks, i, brace_depth);
                    held.push(HeldGuard { lock, binding, paren_depth, line: site.line });
                }
                // Skip past `. lock ( )`.
                i += 4;
                continue;
            }
            i += 1;
        }
    }
}

/// Match `<ident> . lock ( )` at position `i` (pointing at the `.`).
/// Returns the receiver name and the `lock` token. `try_lock` is exempt:
/// it cannot block, so it cannot deadlock.
fn match_acquisition(toks: &[Token], i: usize) -> Option<(String, &Token)> {
    if !toks[i].is_punct('.') {
        return None;
    }
    let call = toks.get(i + 1)?;
    if !call.is_ident("lock") {
        return None;
    }
    if !toks.get(i + 2)?.is_punct('(') || !toks.get(i + 3)?.is_punct(')') {
        return None;
    }
    let recv = toks.get(i.checked_sub(1)?)?;
    if recv.kind != TokKind::Ident || recv.text == "self" {
        // `foo().lock()` or `self.lock()` — receiver shape we don't model.
        return None;
    }
    Some((recv.text.clone(), call))
}

/// Whether the acquisition at `i` (the `.` of `.lock()`) is the entire RHS
/// of a `let`: `let [mut] g = recv.lock() ;` — then the guard is bound to
/// `g` at the current brace depth.
fn binding_of(toks: &[Token], i: usize, brace_depth: usize) -> Option<(String, usize)> {
    // The token after `.lock()` must end the statement.
    if !toks.get(i + 4).is_some_and(|t| t.is_punct(';')) {
        return None;
    }
    // Walk back over the receiver chain: `a.b.c.lock()` — idents and dots.
    let mut j = i - 1; // receiver ident
    while j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].kind == TokKind::Ident {
        j -= 2;
    }
    // Optional leading `*` / `&` ignored (not produced by `let g = x.lock()`).
    if j < 2 || !toks[j - 1].is_punct('=') {
        return None;
    }
    let var = &toks[j - 2];
    if var.kind != TokKind::Ident {
        return None;
    }
    let let_pos = if toks.get(j.checked_sub(3)?).is_some_and(|t| t.is_ident("mut")) {
        j.checked_sub(4)?
    } else {
        j - 3
    };
    if toks.get(let_pos).is_some_and(|t| t.is_ident("let")) {
        Some((var.text.clone(), brace_depth))
    } else {
        None
    }
}

fn report_cycles(graph: &LockGraph, diags: &mut Vec<Diagnostic>) {
    // DFS with colouring; report each cycle once (dedup by node set).
    let nodes: Vec<&String> = graph.edges.keys().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in nodes {
        let mut stack = vec![(start.clone(), vec![start.clone()])];
        let mut visited = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if !visited.insert(node.clone()) {
                continue;
            }
            if let Some(next) = graph.edges.get(&node) {
                for follower in next.keys() {
                    if follower == start {
                        let mut cycle = path.clone();
                        let mut key = cycle.clone();
                        key.sort();
                        if reported.insert(key) {
                            cycle.push(start.clone());
                            let witnesses: Vec<String> = cycle
                                .windows(2)
                                .filter_map(|w| graph.edges.get(&w[0])?.get(&w[1]))
                                .map(|(f, l)| format!("{f}:{l}"))
                                .collect();
                            diags.push(Diagnostic {
                                lint: "lock-order",
                                severity: Severity::Error,
                                file: witnesses
                                    .first()
                                    .and_then(|w| w.rsplit_once(':'))
                                    .map(|(f, _)| f.to_string())
                                    .unwrap_or_default(),
                                line: witnesses
                                    .first()
                                    .and_then(|w| w.rsplit_once(':'))
                                    .and_then(|(_, l)| l.parse().ok())
                                    .unwrap_or(1),
                                col: 1,
                                message: format!(
                                    "lock-order cycle: {} (acquisition sites: {})",
                                    cycle.join(" -> "),
                                    witnesses.join(", ")
                                ),
                            });
                        }
                    } else if !path.contains(follower) {
                        let mut p = path.clone();
                        p.push(follower.clone());
                        stack.push((follower.clone(), p));
                    }
                }
            }
        }
    }
}

/// `no-unwrap-in-lib` — `.unwrap()` / `.expect(…)` is forbidden on library
/// paths unless justified with `// unwrap-ok: <why infallible>`.
pub struct NoUnwrapInLib;

impl Lint for NoUnwrapInLib {
    fn id(&self) -> &'static str {
        "no-unwrap-in-lib"
    }
    fn description(&self) -> &'static str {
        "library code must not unwrap()/expect() without an `unwrap-ok:` justification"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(call) = toks.get(i + 1) else { continue };
            if !(call.is_ident("unwrap") || call.is_ident("expect")) {
                continue;
            }
            if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if file.in_test_code(call.line)
                || file.is_allowed(self.id(), call.line)
                || file.has_justification("unwrap-ok:", call.line)
            {
                continue;
            }
            diags.push(diag(
                self.id(),
                self.severity(),
                file,
                call,
                format!(
                    "`.{}()` on a library path: convert to `Result<_, NmoError>` or add \
                     `// unwrap-ok: <why this cannot fail>`",
                    call.text
                ),
            ));
        }
    }
}

/// `relaxed-atomics-audit` — every `Ordering::Relaxed` must carry a
/// `// relaxed-ok:` justification pinning why relaxed is sufficient.
pub struct RelaxedAtomicsAudit;

impl Lint for RelaxedAtomicsAudit {
    fn id(&self) -> &'static str {
        "relaxed-atomics-audit"
    }
    fn description(&self) -> &'static str {
        "every Ordering::Relaxed needs a `relaxed-ok:` justification comment"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("Ordering") {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            let Some(ord) = toks.get(i + 3) else { continue };
            if !ord.is_ident("Relaxed") {
                continue;
            }
            // The justification may sit on the `Relaxed` line, above it, or
            // (multi-line calls) attached to the line the statement starts
            // on — walk back to the previous statement boundary.
            let stmt_start = toks[..i]
                .iter()
                .rposition(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
                .and_then(|b| toks.get(b + 1))
                .map(|t| t.line)
                .unwrap_or(ord.line);
            if file.in_test_code(ord.line)
                || file.is_allowed(self.id(), ord.line)
                || file.is_allowed(self.id(), stmt_start)
                || file.has_justification("relaxed-ok:", ord.line)
                || file.has_justification("relaxed-ok:", stmt_start)
            {
                continue;
            }
            diags.push(diag(
                self.id(),
                self.severity(),
                file,
                ord,
                "Ordering::Relaxed without a `// relaxed-ok: <why>` justification — \
                 pin why no happens-before edge is needed, or upgrade to Acquire/Release"
                    .to_string(),
            ));
        }
    }
}

/// `bounded-channel` — no unbounded channel/queue construction outside
/// `compat/`: backpressure must be explicit (`EventBus` / `sync_channel`).
pub struct BoundedChannel;

impl Lint for BoundedChannel {
    fn id(&self) -> &'static str {
        "bounded-channel"
    }
    fn description(&self) -> &'static str {
        "no unbounded channel construction outside compat/"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            let hit = (t.is_ident("channel")
                && i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].is_ident("mpsc")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
                || (t.is_ident("unbounded") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')));
            if !hit || file.in_test_code(t.line) || file.is_allowed(self.id(), t.line) {
                continue;
            }
            diags.push(diag(
                self.id(),
                self.severity(),
                file,
                t,
                "unbounded channel construction: use the bounded EventBus/ShardedBus \
                 (explicit backpressure + drop accounting) or `mpsc::sync_channel`"
                    .to_string(),
            ));
        }
    }
}

/// `no-println-in-lib` — library crates report through `summary()` returns
/// and stderr warning helpers, never stdout.
pub struct NoPrintlnInLib;

impl Lint for NoPrintlnInLib {
    fn id(&self) -> &'static str {
        "no-println-in-lib"
    }
    fn description(&self) -> &'static str {
        "no println!/print! in library crates (stdout belongs to binaries)"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.is_ident("println") || t.is_ident("print")) {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                continue;
            }
            if file.in_test_code(t.line) || file.is_allowed(self.id(), t.line) {
                continue;
            }
            diags.push(diag(
                self.id(),
                self.severity(),
                file,
                t,
                format!(
                    "`{}!` in library code: return data from `summary()`-style APIs or \
                     use an eprintln-based warning helper",
                    t.text
                ),
            ));
        }
    }
}

/// `pub-api-result` — a public `nmo` function whose body deals in
/// `NmoError` must surface it: its return type must mention `Result`.
pub struct PubApiResult;

impl Lint for PubApiResult {
    fn id(&self) -> &'static str {
        "pub-api-result"
    }
    fn description(&self) -> &'static str {
        "public nmo functions that construct NmoError must return Result<_, NmoError>"
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Lib || !file.rel.contains("crates/nmo/src") {
            return;
        }
        let toks = &file.tokens;
        let mut i = 0;
        while i < toks.len() {
            // `pub fn name` — but not `pub(crate) fn` (not public API).
            if !toks[i].is_ident("pub") {
                i += 1;
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                i += 1;
                continue;
            }
            let Some(fn_pos) = find_fn_keyword(toks, i) else {
                i += 1;
                continue;
            };
            let Some(name) = toks.get(fn_pos + 1) else {
                i += 1;
                continue;
            };
            let Some((sig_end, body_end)) = span_fn(toks, fn_pos) else {
                i = fn_pos + 1;
                continue;
            };
            let sig = &toks[fn_pos..sig_end];
            let body = &toks[sig_end..body_end];
            let constructs_error = body
                .windows(3)
                .any(|w| w[0].is_ident("NmoError") && w[1].is_punct(':') && w[2].is_punct(':'));
            let returns_result = sig
                .iter()
                .any(|t| t.is_ident("Result") || t.is_ident("NmoError") || t.is_ident("Self"));
            if constructs_error
                && !returns_result
                && !file.in_test_code(name.line)
                && !file.is_allowed(self.id(), name.line)
            {
                diags.push(diag(
                    self.id(),
                    self.severity(),
                    file,
                    name,
                    format!(
                        "public fn `{}` constructs NmoError but does not return \
                         `Result<_, NmoError>` — failures must reach the caller",
                        name.text
                    ),
                ));
            }
            i = body_end;
        }
    }
}

/// From a `pub` at `i`, find the `fn` keyword allowing the modifiers that
/// may sit between (`const`, `unsafe`, `async`, `extern "C"`).
fn find_fn_keyword(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    for _ in 0..4 {
        let t = toks.get(j)?;
        if t.is_ident("fn") {
            return Some(j);
        }
        if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") {
            j += 1;
        } else if t.is_ident("extern") {
            j += 1;
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                j += 1;
            }
        } else {
            return None;
        }
    }
    None
}

/// Given the index of `fn`, return `(body_start, body_end)` token indices:
/// `body_start` points at the opening `{` (signature runs `[fn_pos,
/// body_start)`), `body_end` one past the matching `}`. Returns `None` for
/// brace-less declarations (trait methods).
fn span_fn(toks: &[Token], fn_pos: usize) -> Option<(usize, usize)> {
    let mut j = fn_pos;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            break;
        }
        if t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let body_start = j;
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((body_start, j + 1));
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_lints;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/nmo/src/x.rs", FileKind::Lib, src);
        run_lints(&[file])
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn lock_order_cycle_detected() {
        let src = "\
fn forward() {
    let a = alpha.lock();
    let b = beta.lock();
    drop(b);
    drop(a);
}
fn backward() {
    let b = beta.lock();
    let a = alpha.lock();
}
";
        let diags = lint_src(src);
        assert!(ids(&diags).contains(&"lock-order"), "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("alpha -> beta -> alpha")
            || d.message.contains("beta -> alpha -> beta")));
    }

    #[test]
    fn lock_order_consistent_is_clean() {
        let src = "\
fn one() {
    let a = alpha.lock();
    let b = beta.lock();
}
fn two() {
    let a = alpha.lock();
    let b = beta.lock();
}
";
        assert!(!ids(&lint_src(src)).contains(&"lock-order"));
    }

    #[test]
    fn lock_order_drop_releases() {
        // alpha is dropped before beta is taken, so no alpha->beta edge —
        // and the reverse order elsewhere therefore no cycle.
        let src = "\
fn one() {
    let a = alpha.lock();
    drop(a);
    let b = beta.lock();
}
fn two() {
    let b = beta.lock();
    let a = alpha.lock();
}
";
        assert!(!ids(&lint_src(src)).contains(&"lock-order"));
    }

    #[test]
    fn lock_order_temporary_guard_scope() {
        // A temporary guard (`x.lock().field`) dies at the statement end.
        let src = "\
fn one() {
    let t = alpha.lock().field;
    let b = beta.lock();
}
fn two() {
    let b = beta.lock();
    let t = alpha.lock().field;
}
";
        let diags = lint_src(src);
        // beta is held while alpha is temporarily taken in `two`, but the
        // reverse never happens: `one`'s alpha guard died at its `;`.
        assert!(!ids(&diags).contains(&"lock-order"), "{diags:?}");
    }

    #[test]
    fn lock_order_self_deadlock() {
        let src = "\
fn oops() {
    let a = alpha.lock();
    let b = alpha.lock();
}
";
        let diags = lint_src(src);
        assert!(diags
            .iter()
            .any(|d| d.lint == "lock-order" && d.message.contains("self-deadlock")));
    }

    #[test]
    fn unwrap_flagged_and_justified() {
        let src = "\
fn f() {
    x.unwrap();
    // unwrap-ok: checked two lines above
    y.unwrap();
    z.unwrap_or_default();
    w.expect(\"boom\");
}
";
        let diags = lint_src(src);
        let unwraps: Vec<_> = diags.iter().filter(|d| d.lint == "no-unwrap-in-lib").collect();
        assert_eq!(unwraps.len(), 2, "{unwraps:?}"); // x.unwrap and w.expect
        assert_eq!(unwraps[0].line, 2);
        assert_eq!(unwraps[1].line, 6);
    }

    #[test]
    fn relaxed_needs_justification() {
        let src = "\
fn f() {
    a.load(Ordering::Relaxed);
    // relaxed-ok: monotone counter, read for reporting only
    b.load(Ordering::Relaxed);
    c.load(Ordering::Acquire);
}
";
        let diags = lint_src(src);
        let hits: Vec<_> = diags.iter().filter(|d| d.lint == "relaxed-atomics-audit").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn relaxed_multiline_call_uses_expression_start() {
        let src = "\
fn f() {
    // relaxed-ok: simulated-time frontier, no data published through it
    x.compare_exchange_weak(
        prev,
        next,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}
";
        // The comment sits above the call; both Relaxed tokens are justified
        // when the comment is attached to their own lines by the walk-up.
        let diags = lint_src(src);
        assert!(
            !ids(&diags).contains(&"relaxed-atomics-audit"),
            "walk-up over the argument lines should find the call comment: {diags:?}"
        );
    }

    #[test]
    fn bounded_channel_hits_mpsc_and_unbounded() {
        let src = "\
fn f() {
    let (tx, rx) = std::sync::mpsc::channel();
    let q = unbounded();
    let (a, b) = std::sync::mpsc::sync_channel(8);
}
";
        let diags = lint_src(src);
        assert_eq!(diags.iter().filter(|d| d.lint == "bounded-channel").count(), 2);
    }

    #[test]
    fn println_in_lib_flagged() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }";
        let diags = lint_src(src);
        assert_eq!(diags.iter().filter(|d| d.lint == "no-println-in-lib").count(), 1);
    }

    #[test]
    fn pub_api_result_flags_swallowed_error() {
        let src = "\
pub fn bad(x: u32) -> u32 {
    let _e = NmoError::Config(\"oops\".into());
    x
}
pub fn good(x: u32) -> Result<u32, NmoError> {
    Err(NmoError::Config(\"oops\".into()))
}
fn private_is_fine() {
    let _e = NmoError::Config(\"oops\".into());
}
";
        let diags = lint_src(src);
        let hits: Vec<_> = diags.iter().filter(|d| d.lint == "pub-api-result").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("`bad`"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn f() {
        x.unwrap();
        println!(\"dbg\");
        a.load(Ordering::Relaxed);
    }
}
";
        let diags = lint_src(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_lib_files_exempt_from_policies() {
        let src = "fn f() { x.unwrap(); println!(\"ok\"); }";
        let file = SourceFile::parse("tests/x.rs", FileKind::Test, src);
        assert!(run_lints(&[file]).is_empty());
        let file = SourceFile::parse("src/bin/tool.rs", FileKind::Bin, src);
        let diags = run_lints(&[file]);
        assert!(diags.iter().all(|d| d.lint != "no-println-in-lib"));
        assert!(diags.iter().all(|d| d.lint != "no-unwrap-in-lib"));
    }
}
