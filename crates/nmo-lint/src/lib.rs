//! `nmo-lint` — the workspace's own concurrency/correctness analysis pass.
//!
//! The sharded streaming spine (pump workers → `ShardedBus` lanes → shard
//! consumers → deterministic merge) rests on hand-maintained invariants:
//! lock acquisition order, publish-then-mark ordering, and the `Ordering`
//! choice on every atomic. Nothing in `rustc` or clippy checks those, so
//! this crate does: a self-contained static pass (hand-rolled lexer — the
//! build environment has no crates.io, so no `syn`) with repo-specific
//! lints, run in CI as `cargo run -p nmo-lint -- --deny-warnings`.
//!
//! The static pass is paired with a dynamic arm: `compat/parking_lot`
//! instruments every lock with a runtime lock-order checker (enabled by
//! `NMO_LOCK_CHECK=1`) whose observed acquisition graph cross-validates the
//! static one built by the [`lints::LockOrder`] lint.
//!
//! ## Suppression
//!
//! Diagnostics are suppressed with magic comments (the `#[allow]` analogue
//! for a pass that runs outside rustc):
//!
//! * `// nmo-lint: allow(lint-id)` on the flagged line or the comment
//!   block immediately above it;
//! * `// nmo-lint: allow-file(lint-id)` anywhere in the file;
//! * lint-specific justification comments (`// unwrap-ok: …`,
//!   `// relaxed-ok: …`) that both suppress and document.

#![warn(missing_docs)]

pub mod lexer;
pub mod lints;

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use lexer::{lex, Comment, Token};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style / policy finding; fails the build only under `--deny-warnings`.
    Warning,
    /// Correctness finding (e.g. a lock-order cycle); always fails.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The lint that produced it (e.g. `lock-order`).
    pub lint: &'static str,
    /// Its severity.
    pub severity: Severity,
    /// File the finding is in (workspace-relative when discovered by walk).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line:col: severity[lint] message`.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}] {}",
            self.file, self.line, self.col, self.severity, self.lint, self.message
        )
    }

    /// Render as a JSON object (hand-rolled; no serde in this environment).
    pub fn json(&self) -> String {
        format!(
            "{{\"lint\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(self.lint),
            json_str(&self.severity.to_string()),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message)
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What kind of source a file is — decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — every lint applies.
    Lib,
    /// Binary (`src/bin/`, `main.rs`) — println/unwrap policies relaxed.
    Bin,
    /// Integration tests, benches, examples — exempt from the policies.
    Test,
    /// Vendored offline shims under `compat/` — exempt (own the checker).
    Compat,
}

/// Classify a path the way the workspace lays files out.
pub fn classify(path: &Path) -> FileKind {
    let mut kind = FileKind::Lib;
    for comp in path.components() {
        let c = comp.as_os_str().to_string_lossy();
        match c.as_ref() {
            "compat" => return FileKind::Compat,
            "tests" | "benches" | "examples" | "fixtures" => kind = FileKind::Test,
            "bin" => kind = FileKind::Bin,
            _ => {}
        }
    }
    if kind == FileKind::Lib && path.file_name().is_some_and(|f| f == "main.rs") {
        return FileKind::Bin;
    }
    kind
}

/// One lexed source file plus the derived lookup structures the lints use.
pub struct SourceFile {
    /// Display path (workspace-relative when discovered by the walk).
    pub rel: String,
    /// What kind of file it is.
    pub kind: FileKind,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// The comment side-channel.
    pub comments: Vec<Comment>,
    /// Lexer problems (surfaced as diagnostics by the runner).
    pub lex_errors: Vec<(u32, String)>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
    /// Lint ids allowed for the whole file via `allow-file(...)`.
    allow_file: HashSet<String>,
    /// Comment text per line (a line may hold several comments).
    comment_by_line: HashMap<u32, String>,
    /// Lines that carry at least one non-comment token.
    code_lines: HashSet<u32>,
}

impl SourceFile {
    /// Lex and index one file's text.
    pub fn parse(rel: impl Into<String>, kind: FileKind, text: &str) -> SourceFile {
        let out = lex(text);
        let mut comment_by_line: HashMap<u32, String> = HashMap::new();
        let mut allow_file = HashSet::new();
        for c in &out.comments {
            comment_by_line.entry(c.line).or_default().push_str(&c.text);
            for id in parse_allows(&c.text, "allow-file") {
                allow_file.insert(id);
            }
        }
        let code_lines: HashSet<u32> = out.tokens.iter().map(|t| t.line).collect();
        let test_ranges = find_test_ranges(&out.tokens);
        SourceFile {
            rel: rel.into(),
            kind,
            tokens: out.tokens,
            comments: out.comments,
            lex_errors: out.errors,
            test_ranges,
            allow_file,
            comment_by_line,
            code_lines,
        }
    }

    /// Whether a line falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// The comment text attached to a site: comments on the line itself
    /// plus any contiguous comment-only lines immediately above it.
    pub fn attached_comments(&self, line: u32) -> String {
        let mut text = self.comment_by_line.get(&line).cloned().unwrap_or_default();
        let mut l = line;
        while l > 1 {
            l -= 1;
            match self.comment_by_line.get(&l) {
                Some(c) if !self.code_lines.contains(&l) => {
                    text.push('\n');
                    text.push_str(c);
                }
                _ => break,
            }
        }
        text
    }

    /// Whether `lint` is suppressed at `line` (allow comment on the line or
    /// the comment block above it, or an `allow-file`).
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        if self.allow_file.contains(lint) {
            return true;
        }
        parse_allows(&self.attached_comments(line), "allow").iter().any(|id| id == lint)
    }

    /// Whether the comments attached to `line` contain `marker` (e.g.
    /// `unwrap-ok:`) — the justification convention.
    pub fn has_justification(&self, marker: &str, line: u32) -> bool {
        self.attached_comments(line).contains(marker)
    }
}

/// Extract lint ids from `nmo-lint: <verb>(id, id, ...)` in comment text.
fn parse_allows(text: &str, verb: &str) -> Vec<String> {
    let mut ids = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("nmo-lint:") {
        rest = &rest[at + "nmo-lint:".len()..];
        let trimmed = rest.trim_start();
        if let Some(args) = trimmed.strip_prefix(verb).and_then(|t| t.strip_prefix('(')) {
            if let Some(end) = args.find(')') {
                for id in args[..end].split(',') {
                    let id = id.trim();
                    if !id.is_empty() {
                        ids.push(id.to_string());
                    }
                }
            }
        }
    }
    ids
}

/// Find inclusive line ranges of items annotated `#[cfg(test)]`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]` exactly.
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
        {
            let start_line = tokens[i].line;
            // The annotated item runs to its matching close brace (or the
            // statement's `;` for brace-less items like `use`).
            let mut j = i + 7;
            let mut depth = 0usize;
            let mut end_line = start_line;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    end_line = t.line;
                    break;
                }
                j += 1;
            }
            if j >= tokens.len() {
                end_line = tokens.last().map(|t| t.line).unwrap_or(start_line);
            }
            ranges.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// A lint pass. Most lints look at one file at a time; workspace-scoped
/// lints (lock-order) see every file at once.
pub trait Lint {
    /// Stable identifier used in output and suppression comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-lints`.
    fn description(&self) -> &'static str;
    /// Severity of this lint's findings.
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    /// Per-file check (default: nothing).
    fn check_file(&self, _file: &SourceFile, _diags: &mut Vec<Diagnostic>) {}
    /// Workspace-level check over every file (default: nothing).
    fn check_workspace(&self, _files: &[SourceFile], _diags: &mut Vec<Diagnostic>) {}
}

/// The full lint set, in reporting order.
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lints::LockOrder),
        Box::new(lints::NoUnwrapInLib),
        Box::new(lints::RelaxedAtomicsAudit),
        Box::new(lints::BoundedChannel),
        Box::new(lints::NoPrintlnInLib),
        Box::new(lints::PubApiResult),
    ]
}

/// Run every lint over the given parsed files.
pub fn run_lints(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        for &(line, ref msg) in &file.lex_errors {
            diags.push(Diagnostic {
                lint: "lexer",
                severity: Severity::Error,
                file: file.rel.clone(),
                line,
                col: 1,
                message: msg.clone(),
            });
        }
    }
    for lint in default_lints() {
        for file in files {
            lint.check_file(file, &mut diags);
        }
        lint.check_workspace(files, &mut diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    diags
}

/// Load and parse one file from disk.
pub fn load_file(path: &Path, rel: &str, kind: FileKind) -> std::io::Result<SourceFile> {
    let text = std::fs::read_to_string(path)?;
    Ok(SourceFile::parse(rel, kind, &text))
}

/// Discover the workspace's `.rs` files under `root`, classified, skipping
/// `target/`, hidden directories, and the lint fixtures themselves.
pub fn discover(root: &Path) -> std::io::Result<Vec<(PathBuf, String, FileKind)>> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel =
                    path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
                let kind = classify(Path::new(&rel));
                found.push((path, rel, kind));
            }
        }
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(found)
}

/// Lint the workspace rooted at `root` end to end.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for (path, rel, kind) in discover(root)? {
        files.push(load_file(&path, &rel, kind)?);
    }
    Ok(run_lints(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify(Path::new("crates/nmo/src/stream.rs")), FileKind::Lib);
        assert_eq!(classify(Path::new("crates/nmo/src/trace.rs")), FileKind::Lib);
        assert_eq!(classify(Path::new("crates/nmo-bench/src/bin/repro.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("src/main.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("tests/streaming.rs")), FileKind::Test);
        assert_eq!(classify(Path::new("examples/quickstart.rs")), FileKind::Test);
        assert_eq!(classify(Path::new("crates/nmo-bench/benches/decode.rs")), FileKind::Test);
        assert_eq!(classify(Path::new("compat/parking_lot/src/lib.rs")), FileKind::Compat);
    }

    #[test]
    fn test_ranges_cover_cfg_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let file = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(!file.in_test_code(1));
        assert!(file.in_test_code(4));
        assert!(!file.in_test_code(6));
    }

    #[test]
    fn suppression_comments() {
        let src = "\
// nmo-lint: allow-file(no-println-in-lib)
fn a() {
    // nmo-lint: allow(no-unwrap-in-lib)
    x.unwrap();
    y.unwrap(); // nmo-lint: allow(no-unwrap-in-lib, lock-order)
    z.unwrap();
}
";
        let file = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(file.is_allowed("no-println-in-lib", 2));
        assert!(file.is_allowed("no-unwrap-in-lib", 4));
        assert!(file.is_allowed("no-unwrap-in-lib", 5));
        assert!(file.is_allowed("lock-order", 5));
        assert!(!file.is_allowed("no-unwrap-in-lib", 6));
    }

    #[test]
    fn justification_walks_comment_block() {
        let src = "\
fn a() {
    // unwrap-ok: the slice length is a compile-time constant
    // (two lines of justification)
    x.unwrap();
    y.unwrap();
}
";
        let file = SourceFile::parse("x.rs", FileKind::Lib, src);
        assert!(file.has_justification("unwrap-ok:", 4));
        assert!(!file.has_justification("unwrap-ok:", 5));
    }

    #[test]
    fn json_escaping() {
        let d = Diagnostic {
            lint: "x",
            severity: Severity::Warning,
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            message: "tab\there".into(),
        };
        assert_eq!(
            d.json(),
            "{\"lint\":\"x\",\"severity\":\"warning\",\"file\":\"a\\\"b.rs\",\
             \"line\":1,\"col\":2,\"message\":\"tab\\there\"}"
        );
    }
}
