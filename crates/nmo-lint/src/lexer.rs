//! A hand-rolled Rust lexer — just enough of the language to drive the
//! token-pattern lints without `syn` (crates.io is unreachable from the
//! build environment, so the pass is self-contained by design).
//!
//! The lexer understands everything that would otherwise cause false
//! positives at the text level:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//!   collected separately so the lints can look up justification comments;
//! * string literals, byte strings, and raw strings with arbitrary `#`
//!   fences (`r#"…"#`), so `".unwrap()"` inside a string never matches;
//! * char literals vs lifetimes (`'a'` vs `'a`), including escapes;
//! * raw identifiers (`r#match`).
//!
//! Everything else degrades to single-character punctuation tokens, which
//! is all the pattern lints need.

/// The coarse kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `let`, `r#match` → `match`).
    Ident,
    /// Lifetime (`'a`, `'static`), quote stripped.
    Lifetime,
    /// Character literal, quotes included.
    Char,
    /// String / byte-string / raw-string literal, delimiters included.
    Str,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (identifiers carry their name; puncts one char).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether the token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// One comment (line or block), kept out of the token stream but available
/// to the lints for justification / suppression lookup.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// The lexer's output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Human-readable problems hit while lexing (unterminated literals…).
    pub errors: Vec<(u32, String)>,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexOutput,
}

/// Lex `src` into tokens and comments. Never fails: malformed input is
/// reported through [`LexOutput::errors`] and lexing resynchronises.
pub fn lex(src: &str) -> LexOutput {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1, out: LexOutput::default() };
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&mut self, line: u32, msg: impl Into<String>) {
        self.out.errors.push((line, msg.into()));
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, text, line, col });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' if self.raw_or_byte_literal(line, col) => {}
                b'"' => self.string(line, col),
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => self.number(line, col),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (b as char).to_string(), line, col);
                }
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line, end_line: line });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    self.error(line, "unterminated block comment");
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line, end_line: self.line });
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw
    /// identifiers (`r#ident`). Returns `true` if it consumed anything.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let first = self.peek(0).unwrap_or(0);
        let mut ahead = 1;
        if first == b'b' && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        // Count the `#` fence after the `r`.
        let has_r = first == b'r' || ahead == 2;
        let mut fence = 0usize;
        if has_r {
            while self.peek(ahead + fence) == Some(b'#') {
                fence += 1;
            }
            if self.peek(ahead + fence) == Some(b'"') {
                for _ in 0..ahead + fence + 1 {
                    self.bump();
                }
                self.raw_string_body(line, col, fence);
                return true;
            }
            // `r#ident` — a raw identifier, lexed as its bare name.
            if first == b'r' && fence == 1 {
                if let Some(c) = self.peek(2) {
                    if c == b'_' || c.is_ascii_alphabetic() {
                        self.bump();
                        self.bump();
                        self.ident(line, col);
                        return true;
                    }
                }
            }
        }
        if first == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.bump();
                    self.string(line, col);
                    return true;
                }
                Some(b'\'') => {
                    self.bump();
                    self.quote(line, col);
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    fn raw_string_body(&mut self, line: u32, col: u32, fence: usize) {
        let start = self.pos;
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let mut ok = true;
                    for i in 0..fence {
                        if self.peek(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        for _ in 0..fence + 1 {
                            self.bump();
                        }
                        self.push(TokKind::Str, text, line, col);
                        return;
                    }
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    self.error(line, "unterminated raw string");
                    return;
                }
            }
        }
    }

    fn string(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    self.error(line, "unterminated string literal");
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line, col);
    }

    /// Disambiguate a `'`: char literal (`'x'`, `'\n'`) vs lifetime (`'a`).
    fn quote(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape then scan to `'`.
                self.bump();
                self.bump();
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Char, text, line, col);
            }
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // Could be `'a'` (char) or `'a` / `'static` (lifetime):
                // a lifetime is ident chars NOT followed by a closing quote.
                let mut len = 1;
                while let Some(n) = self.peek(len) {
                    if n == b'_' || n.is_ascii_alphanumeric() {
                        len += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(len) == Some(b'\'') && len == 1 {
                    self.bump();
                    self.bump();
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push(TokKind::Char, text, line, col);
                } else {
                    let mut name = String::new();
                    for _ in 0..len {
                        name.push(self.bump().unwrap_or(b'?') as char);
                    }
                    self.push(TokKind::Lifetime, name, line, col);
                }
            }
            Some(_) if self.peek(1) == Some(b'\'') => {
                // Punctuation char literal: `'"'`, `'.'`, `' '`. Without
                // this, the `"` in `'"'` would open a phantom string and
                // invert string/code regions for the rest of the file.
                self.bump();
                self.bump();
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Char, text, line, col);
            }
            _ => {
                // A bare `'` (e.g. inside a macro pattern) — treat as punct.
                self.push(TokKind::Punct, "'".into(), line, col);
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' {
                // `1.5` continues the number; `1..n` does not.
                match self.peek(1) {
                    Some(n) if n.is_ascii_digit() => {
                        self.bump();
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let out = lex(r#"let s = "a.unwrap()"; s"#);
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(out.errors.len(), 0);
    }

    #[test]
    fn raw_strings_with_fences() {
        let out = lex(r##"let s = r#"quote " inside .unwrap()"#; done"##);
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(out.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ x"), vec!["x"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = out.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = out.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn punctuation_char_literals() {
        // `'"'` must not open a phantom string: `hidden` is inside a real
        // string literal after it and must stay hidden.
        let out = lex("match c { '\"' => 1, '.' => 2, _ => 3 }; let s = \"hidden.unwrap()\";");
        assert_eq!(out.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(out.errors.len(), 0);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn byte_strings_and_numbers() {
        let out = lex(r#"let b = b"bytes"; let r = br"raw"; let n = 1_000.5; let m = 0..5;"#);
        assert_eq!(out.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        let nums: Vec<_> =
            out.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.clone()).collect();
        assert_eq!(nums, vec!["1_000.5", "0", "5"]);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("a\n  b");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_reported() {
        let out = lex("let s = \"oops");
        assert_eq!(out.errors.len(), 1);
    }
}
