//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p nmo-lint -- [--root DIR] [--deny-warnings] [--format human|json]
//!                          [--assume-lib] [--list-lints] [PATH ...]
//! ```
//!
//! With no positional `PATH`s the whole workspace under `--root` (default:
//! the current directory, walking up to the workspace `Cargo.toml`) is
//! linted. Exit codes: 0 clean, 1 findings (errors always; warnings only
//! under `--deny-warnings`), 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nmo_lint::{classify, default_lints, lint_workspace, load_file, FileKind, Severity};

struct Options {
    root: Option<PathBuf>,
    deny_warnings: bool,
    json: bool,
    assume_lib: bool,
    list_lints: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: nmo-lint [--root DIR] [--deny-warnings] [--format human|json] \
     [--assume-lib] [--list-lints] [PATH ...]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        deny_warnings: false,
        json: false,
        assume_lib: false,
        list_lints: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.json = false,
                Some("json") => opts.json = true,
                _ => return Err("--format needs `human` or `json`".into()),
            },
            "--assume-lib" => opts.assume_lib = true,
            "--list-lints" => opts.list_lints = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

/// Walk up from `start` to the directory holding the workspace manifest
/// (a `Cargo.toml` next to a `crates/` directory).
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            return Ok(ExitCode::SUCCESS);
        }
        Err(msg) => return Err(format!("{msg}\n{}", usage())),
    };

    if opts.list_lints {
        for lint in default_lints() {
            println!("{:<24} {}", lint.id(), lint.description());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let diags = if opts.paths.is_empty() {
        let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
        let root = opts.root.unwrap_or_else(|| find_workspace_root(&cwd));
        lint_workspace(&root).map_err(|e| format!("lint walk failed under {root:?}: {e}"))?
    } else {
        let mut files = Vec::new();
        for path in &opts.paths {
            let rel = path.to_string_lossy().replace('\\', "/");
            let kind = if opts.assume_lib { FileKind::Lib } else { classify(Path::new(&rel)) };
            files.push(load_file(path, &rel, kind).map_err(|e| format!("cannot read {rel}: {e}"))?);
        }
        nmo_lint::run_lints(&files)
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        if opts.json {
            println!("{}", d.json());
        } else {
            println!("{}", d.human());
        }
    }
    if !opts.json {
        eprintln!("nmo-lint: {errors} error(s), {warnings} warning(s)");
    }
    let fail = errors > 0 || (opts.deny_warnings && warnings > 0);
    Ok(if fail { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nmo-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
