//! Live streaming: profile a STREAM run through the online pipeline and
//! watch the windows arrive while the workload is still running — the mode
//! a long-running service is profiled in, where waiting for the process to
//! exit is not an option.
//!
//! ```text
//! cargo run --release --example live_stream
//! ```
//!
//! The session is started with `start_streaming()`: a pump thread drains
//! the SPE monitor, the hardware counters, and the machine's RSS/bandwidth
//! probes into window-stamped `SampleBatch`es on a bounded event bus, and
//! the sinks aggregate them incrementally. While the workload runs on its
//! own thread, the main thread polls `poll_snapshot()` for the live
//! readout. `run_streaming()` is the one-call version of the same pipeline.

use std::time::Duration;

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{NmoConfig, NmoError, ProfileSession, StreamOptions, Workload};
use nmo_repro::workloads::StreamBench;

fn main() -> Result<(), NmoError> {
    let session = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig {
            name: "live_stream".into(),
            // A small aux watermark keeps the SPE → monitor lag bounded, so
            // samples land in their windows while those windows are still
            // open (the extra watermark interrupts are charged by the
            // overhead model, exactly like on hardware).
            aux_watermark_bytes: Some(16 * 1024),
            ..NmoConfig::paper_default(1024)
        })
        .threads(8)
        // 250 µs simulated windows so the live readout has plenty of them,
        // and 4 pipeline shards: the 8 profiled cores are drained by 4
        // parallel pump workers onto 4 bus lanes, consumed by 4 shard
        // consumers whose partial states merge deterministically (shards: 0
        // would auto-size to min(cores, available_parallelism)).
        .stream_options(StreamOptions { window_ns: 250_000, shards: 4, ..StreamOptions::default() })
        .build()?;

    // Workloads are set up against the session's machine before collection
    // starts (`run_streaming()` does this automatically when the workload is
    // registered on the builder).
    let mut workload = StreamBench::new(2_000_000, 3);
    workload.setup(session.machine(), &session.annotations())?;

    let active = session.start_streaming()?;
    println!("== NMO live stream ==");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>10}  {:>9}",
        "sim time", "windows", "batches", "samples", "peak RSS"
    );

    let report = std::thread::scope(|s| {
        let machine = active.machine();
        let annotations = active.annotations_ref();
        let cores = active.cores();
        let workload = &mut workload;
        let handle = s.spawn(move || workload.run(machine, annotations, cores));

        // Live readout while the workload runs.
        while !handle.is_finished() {
            if let Some(snap) = active.poll_snapshot() {
                println!(
                    "{:>8.2}ms  {:>8}  {:>8}  {:>10}  {:>7.2}GiB",
                    snap.last_time_ns as f64 * 1e-6,
                    snap.windows_closed,
                    snap.batches,
                    snap.spe_samples,
                    snap.rss_peak_bytes as f64 / (1u64 << 30) as f64,
                );
            }
            #[allow(clippy::disallowed_methods)] // example: live-report cadence
            std::thread::sleep(Duration::from_millis(20));
        }
        handle.join().expect("workload thread panicked")
    })?;

    let profile = active.finish()?;
    println!("\n{}", profile.summary());
    println!("workload issued {} memory ops", report.mem_ops);
    if let Some(stats) = &profile.stream {
        println!(
            "pipeline: {} shards, {} batches over {} windows, {} dropped by backpressure, \
             {} late",
            stats.shards,
            stats.batches_published,
            stats.windows_closed,
            stats.batches_dropped,
            stats.late_batches,
        );
    }
    println!(
        "final series match the post-hoc path: peak RSS {:.3} GiB, peak BW {:.1} GiB/s, \
         SPE loss {:.1}%",
        profile.capacity.peak_gib(),
        profile.bandwidth.peak_gib_per_s,
        profile.loss_fraction() * 100.0,
    );
    Ok(())
}
