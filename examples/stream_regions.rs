//! Memory-region profiling of STREAM (the paper's Figure 4 scenario):
//! tag the three arrays, bracket the Triad kernel with `nmo_start`/`nmo_stop`,
//! and show where the sampled accesses land — per array and per thread.
//!
//! ```text
//! cargo run --release --example stream_regions
//! ```

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{NmoConfig, NmoError, ProfileSession};
use nmo_repro::workloads::StreamBench;

fn main() -> Result<(), NmoError> {
    // 5 iterations of Triad on 8 threads, like the paper's Figure 4.
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig { name: "stream_regions".into(), ..NmoConfig::paper_default(2048) })
        .threads(8)
        .workload(Box::new(StreamBench::new(1_000_000, 5)))
        .build()?
        .run()?;
    let regions = profile.regions();

    println!("== STREAM region profile (Figure 4 scenario) ==");
    println!(
        "{} samples total, {} outside any tag",
        regions.scatter.len(),
        regions.untagged_samples
    );

    // Per-tag distribution: triad reads b and c and writes a, so the three
    // arrays should receive comparable sample counts with the stores
    // concentrated in `a`.
    for tag in &regions.per_tag {
        println!(
            "array {:2}: {:>8} samples  ({:>7} loads, {:>7} stores)  addresses {:#x}..{:#x}",
            tag.name, tag.samples, tag.loads, tag.stores, tag.min_addr, tag.max_addr
        );
    }

    // Per-phase counts: every sample should fall inside one of the 5 "triad"
    // phase instances.
    println!("\nper-phase sample counts:");
    for (phase, count) in &regions.per_phase {
        println!("  {phase:10} {count:>8}");
    }

    // Per-thread address footprints: with a static partition each core's
    // samples cover a distinct slice of each array (the "incremental line
    // segments" of the paper's scatter plot).
    println!("\nper-core sampled address ranges inside array 'a':");
    let a_tag = regions.per_tag.iter().find(|t| t.name == "a");
    if let Some(a_tag) = a_tag {
        for core in 0..8usize {
            let addrs: Vec<u64> = profile
                .samples
                .iter()
                .filter(|s| {
                    s.core == core && s.vaddr >= a_tag.min_addr && s.vaddr <= a_tag.max_addr
                })
                .map(|s| s.vaddr)
                .collect();
            if let (Some(min), Some(max)) = (addrs.iter().min(), addrs.iter().max()) {
                println!(
                    "  core {core}: {:>6} samples in {:#x}..{:#x} (span {:.1} MiB)",
                    addrs.len(),
                    min,
                    max,
                    (max - min) as f64 / (1 << 20) as f64
                );
            }
        }
    }
    Ok(())
}
