//! Quickstart: profile a small STREAM run with NMO and print every level of
//! the memory-centric profile (capacity, bandwidth, regions).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{NmoConfig, NmoError, ProfileSession};
use nmo_repro::workloads::StreamBench;

fn main() -> Result<(), NmoError> {
    // The simulated platform of Table II (Ampere Altra Max-like), profiled
    // with NMO configured the way the paper runs it: loads + stores sampled
    // with ARM SPE, RSS and bandwidth tracking on. The same configuration can
    // be pulled from the NMO_* environment variables with
    // `NmoConfig::from_env()`. The session registers its default backends —
    // SPE sampling plus perf-stat counting — and the three analysis sinks.
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig { name: "quickstart".into(), ..NmoConfig::paper_default(4096) })
        .threads(8)
        // A 2M-element STREAM Triad on 8 threads.
        .workload(Box::new(StreamBench::new(2_000_000, 2)))
        .build()?
        .run()?;

    let report = profile.workload.unwrap_or_default();

    println!("== NMO quickstart ==");
    println!("{}", profile.summary());
    println!();
    println!("workload issued {} memory ops and {} FLOPs", report.mem_ops, report.flops);
    println!(
        "level 1 (capacity):  peak RSS {:.3} GiB ({:.2}% of the 256 GiB node)",
        profile.capacity.peak_gib(),
        profile.capacity.peak_utilization * 100.0
    );
    println!(
        "level 2 (bandwidth): peak {:.1} GiB/s, mean {:.1} GiB/s, arithmetic intensity {:?}",
        profile.bandwidth.peak_gib_per_s,
        profile.bandwidth.mean_gib_per_s,
        profile.bandwidth.arithmetic_intensity
    );

    let regions = profile.regions();
    println!(
        "level 3 (regions):   {} SPE samples attributed as follows:",
        profile.processed_samples
    );
    for tag in &regions.per_tag {
        println!(
            "  {:10}  {:>8} samples ({} loads / {} stores), coverage {:.1}%",
            tag.name,
            tag.samples,
            tag.loads,
            tag.stores,
            tag.coverage * 100.0
        );
    }
    println!("\nperf-stat backend counts:");
    for (event, count) in &profile.perf_counts {
        println!("  {event:14} {count:>14}");
    }
    println!(
        "accuracy vs hardware counter baseline (Eq. 1): {:.1}%",
        profile.accuracy_against(profile.counters.mem_access) * 100.0
    );

    let written = profile.write_csv_reports("results/quickstart")?;
    println!("\nwrote {} CSV report files under results/quickstart/", written.len());
    Ok(())
}
