//! Temporal capacity and bandwidth profiling of the two CloudSuite-style
//! workloads (the paper's Figures 2 and 3): PageRank shows an early load
//! phase that saturates memory usage and an early bandwidth peak; In-memory
//! Analytics (ALS) grows gradually and shows periodic bandwidth peaks, one
//! per sweep.
//!
//! ```text
//! cargo run --release --example cloud_capacity
//! ```

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{Mode, NmoConfig, NmoError, Profile, ProfileSession};
use nmo_repro::workloads::{InMemAnalytics, PageRank, Workload};

fn run(name: &str, workload: Box<dyn Workload>, threads: usize) -> Result<Profile, NmoError> {
    // Levels 1 and 2 only: no SPE sampling, just capacity + bandwidth (the
    // session still runs the perf-stat counter backend).
    let config = NmoConfig {
        enabled: true,
        name: name.into(),
        mode: Mode::None,
        track_rss: true,
        track_bandwidth: true,
        ..Default::default()
    };
    ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(config)
        .threads(threads)
        .workload(workload)
        .build()?
        .run()
}

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    values.iter().map(|v| BARS[((v / max) * 7.0).round().clamp(0.0, 7.0) as usize]).collect()
}

fn describe(profile: &Profile) {
    println!("--- {} ---", profile.name);
    println!(
        "peak RSS {:.3} GiB ({:.2}% of node), final RSS {:.3} GiB",
        profile.capacity.peak_gib(),
        profile.capacity.peak_utilization * 100.0,
        profile.capacity.final_gib()
    );
    let rss: Vec<f64> = profile.capacity.points.iter().map(|p| p.rss_gib).collect();
    println!("capacity over time : {}", sparkline(&rss));
    let bw: Vec<f64> = profile.bandwidth.points.iter().map(|p| p.gib_per_s).collect();
    println!("bandwidth over time: {}", sparkline(&bw));
    println!(
        "peak bandwidth {:.1} GiB/s, mean {:.1} GiB/s over {:.3} ms simulated",
        profile.bandwidth.peak_gib_per_s,
        profile.bandwidth.mean_gib_per_s,
        profile.elapsed_ns as f64 * 1e-6
    );
    println!("phases:");
    for phase in &profile.phases {
        println!(
            "  {:>16}  {:.3} ms .. {:.3} ms",
            phase.name,
            phase.start_ns as f64 * 1e-6,
            if phase.is_open() { f64::NAN } else { phase.end_ns as f64 * 1e-6 }
        );
    }
    println!();
}

fn main() -> Result<(), NmoError> {
    println!("== CloudSuite-style temporal profiles (Figures 2 and 3, scaled down) ==\n");
    let threads = 8;
    let pr = run("pagerank", Box::new(PageRank::new(1 << 15, 8, 4)), threads)?;
    describe(&pr);
    let als = run("inmem-analytics", Box::new(InMemAnalytics::new(4_000, 4_000, 40, 3)), threads)?;
    describe(&als);

    println!(
        "Note: the paper's absolute numbers (123.8 GiB / 52.3 GiB peaks, ~100 GiB/s) come from\n\
         full CloudSuite datasets on 32 cores; these runs are scaled down but preserve the\n\
         shapes — PageRank saturates early with an early bandwidth peak, ALS grows gradually\n\
         with one bandwidth peak per sweep."
    );
    Ok(())
}
