//! Adaptive streaming: the pipeline tunes itself mid-run. An
//! `AdaptiveController` samples the sharded bus (throughput, worst-lane
//! occupancy, drops, consumer idle time) over a sliding window and
//! actuates three knobs while the workload runs — the active shard count
//! (parking and re-activating pump workers), the pump drain cadence, and
//! the backpressure mode (`DropNewest` ↔ `Block`) — against a target loss
//! budget.
//!
//! ```text
//! cargo run --release --example adaptive_stream
//! ```
//!
//! The run prints the live snapshot including the current active width,
//! then replays the controller's full decision log: every width, cadence,
//! and policy move with the rule that fired it.

use std::time::Duration;

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{
    AdaptiveOptions, BackpressurePolicy, ControlAction, NmoConfig, NmoError, ProfileSession,
    StreamOptions, Workload,
};
use nmo_repro::workloads::StreamBench;

fn main() -> Result<(), NmoError> {
    let session = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig {
            name: "adaptive_stream".into(),
            aux_watermark_bytes: Some(16 * 1024),
            ..NmoConfig::paper_default(64)
        })
        .threads(32)
        .stream_options(StreamOptions {
            window_ns: 250_000,
            // Tiny lanes put real pressure on the pipeline so the
            // controller has something to react to.
            bus_capacity: 4,
            backpressure: BackpressurePolicy::DropNewest,
            // Allocate 8 shards; the controller decides how many run.
            shards: 8,
            adaptive: Some(AdaptiveOptions {
                // An aggressive control loop for a short demo run; the
                // defaults (2 ms interval, window of 4) suit long sessions.
                control_interval: Duration::from_micros(500),
                window: 2,
                loss_budget: 0.01,
                ..AdaptiveOptions::default()
            }),
            ..StreamOptions::default()
        })
        .build()?;

    let mut workload = StreamBench::new(1_000_000, 3);
    workload.setup(session.machine(), &session.annotations())?;

    let active = session.start_streaming()?;
    println!("== NMO adaptive stream ==");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>10}  {:>6}",
        "sim time", "windows", "batches", "samples", "width"
    );

    let mut decisions = Vec::new();
    let report = std::thread::scope(|s| {
        let machine = active.machine();
        let annotations = active.annotations_ref();
        let cores = active.cores();
        let workload = &mut workload;
        let handle = s.spawn(move || workload.run(machine, annotations, cores));
        while !handle.is_finished() {
            if let Some(snap) = active.poll_snapshot() {
                println!(
                    "{:>8.2}ms  {:>8}  {:>8}  {:>10}  {:>6}",
                    snap.last_time_ns as f64 * 1e-6,
                    snap.windows_closed,
                    snap.batches,
                    snap.spe_samples,
                    snap.active_shards,
                );
                decisions = snap.adaptive;
            }
            #[allow(clippy::disallowed_methods)] // example: live-report cadence
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.join().expect("workload thread panicked")
    })?;
    if let Some(snap) = active.poll_snapshot() {
        decisions = snap.adaptive;
    }

    let profile = active.finish()?;
    println!("\n{}", profile.summary());
    println!("workload issued {} memory ops", report.mem_ops);

    println!("\ncontroller decision log ({} decisions):", decisions.len());
    for d in &decisions {
        let what = match d.action {
            ControlAction::SetActiveShards { from, to } => {
                format!("width {from} -> {to} shards")
            }
            ControlAction::SetPollInterval { from, to } => {
                format!("cadence {from:?} -> {to:?}")
            }
            ControlAction::SetBackpressure { from, to } => {
                format!("backpressure {from:?} -> {to:?}")
            }
        };
        println!("  tick {:>4}  {:<40}  [{}]", d.tick, what, d.reason);
    }
    Ok(())
}
