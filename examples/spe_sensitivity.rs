//! A reduced version of the paper's Section VII sensitivity study: sweep the
//! ARM SPE sampling period on STREAM and report samples, accuracy (Eq. 1),
//! time overhead, and collisions — the quantities of Figures 7 and 8.
//!
//! ```text
//! cargo run --release --example spe_sensitivity
//! ```
//! (The full sweeps over three workloads, aux-buffer sizes and thread counts
//! are produced by the `repro` binary in `crates/nmo-bench`.)

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{accuracy, time_overhead, NmoConfig, NmoError, ProfileSession};
use nmo_repro::workloads::StreamBench;

const ELEMS: usize = 1_500_000;
const ITERS: usize = 2;
const THREADS: usize = 8;

/// Unprofiled baseline: the same session machinery with collection disabled,
/// so the only difference to the profiled runs is the profiler itself.
fn baseline() -> Result<(u64, u64), NmoError> {
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig::default())
        .threads(THREADS)
        .workload(Box::new(StreamBench::new(ELEMS, ITERS)))
        .build()?
        .run()?;
    Ok((profile.counters.mem_access, profile.counters.cycles))
}

fn main() -> Result<(), NmoError> {
    println!("== ARM SPE sensitivity on STREAM ({} threads) ==", THREADS);
    let (mem_counted, baseline_cycles) = baseline()?;
    println!(
        "baseline: {} mem_access events, {:.3} ms simulated execution time\n",
        mem_counted,
        baseline_cycles as f64 / 3e9 * 1e3
    );
    println!(
        "{:>9}  {:>10}  {:>9}  {:>9}  {:>11}  {:>10}",
        "period", "samples", "acc_%", "ovhd_%", "collisions", "truncated"
    );

    for period in [1000u64, 2000, 4000, 8000, 16000, 32000, 64000, 128000] {
        let profile = ProfileSession::builder()
            .machine_config(MachineConfig::ampere_altra_max())
            .config(NmoConfig::paper_default(period))
            .threads(THREADS)
            .workload(Box::new(StreamBench::new(ELEMS, ITERS)))
            .build()?
            .run()?;

        let acc = accuracy(mem_counted, profile.processed_samples, period);
        let ovh = time_overhead(baseline_cycles, profile.elapsed_cycles);
        println!(
            "{:>9}  {:>10}  {:>9.2}  {:>9.3}  {:>11}  {:>10}",
            period,
            profile.processed_samples,
            acc * 100.0,
            ovh * 100.0,
            profile.spe.collisions,
            profile.spe.truncated_records
        );
    }

    println!(
        "\nExpected shape (paper Figure 8): accuracy collapses below a period of ~2000-3000\n\
         because the monitor cannot drain the aux buffer fast enough, stabilises around\n\
         90-95% at larger periods, while the time overhead falls roughly linearly with\n\
         the sampling rate."
    );
    Ok(())
}
