//! Profile-guided page migration: SPE-driven hot-page tiering, end to end.
//!
//! PageRank (pull-model power iteration over an RMAT graph, the same kernel
//! as `workloads::PageRank`) runs on the Table II machine extended with a
//! CXL-style remote node, with half of its pages homed remotely
//! (`TierSplit { 0.5 }`) and the SLC shrunk so the gather loop actually
//! reaches DRAM. Two identically configured runs differ only in the tiering
//! policy:
//!
//! * **`NoMigration`** — the control arm: pages stay where first touch put
//!   them, so the hot rank/degree pages homed remotely keep hammering the
//!   narrow remote link and every remote fill queues behind them.
//! * **`TopKHot`** — after every closed window the `HotPageTracker`
//!   promotes the hottest remote pages to local DDR through
//!   `Machine::migrate_page`, under a bounded page budget (a real tiering
//!   daemon has finite migration bandwidth), so the cold streamed edge
//!   pages stay remote.
//!
//! The graph is loaded once, then each epoch runs one power iteration with
//! `ActiveSession::tiering_step` actuating between epochs — migrations land
//! at fixed points of the simulated timeline. The example prints the
//! per-epoch migration log and the before/settled per-tier latency table,
//! and asserts the headline result: once the hot pages are local, the
//! remote link decongests and the settled remote-DRAM p99 drops below the
//! `NoMigration` level, toward the local tier. A final streaming run
//! (tracker registered as a sink, migrating from the consumer thread
//! mid-run) verifies streaming==post-hoc sink equivalence with migrations
//! active.
//!
//! ```text
//! cargo run --release --example hot_page_migration
//! ```
//!
//! The default run uses a single worker: the simulated timeline is then
//! fully deterministic (same numbers on every run and platform), and the
//! latency distributions are free of the cross-core clock-skew queueing
//! the shared-busy-frontier DRAM model exhibits under multiple free-running
//! cores. Multi-threaded runs work too (`NMO_HPM_THREADS`), they just make
//! the per-epoch comparison noisier.
//!
//! Environment knobs:
//!
//! | Variable                 | Meaning                                  | Default |
//! |--------------------------|------------------------------------------|---------|
//! | `NMO_HPM_THREADS`        | worker threads (= profiled cores)        | `1`     |
//! | `NMO_HPM_EPOCHS`         | power iterations per run                 | `5`     |
//! | `NMO_HPM_TOPK`           | pages promoted per closed window         | `8`     |
//! | `NMO_HPM_BUDGET`         | total promotion budget, pages            | `48`    |
//! | `NMO_HPM_REMOTE_BW_DIV`  | remote peak bandwidth (local / this)     | `256`   |
//! | `NMO_HPM_PERIOD`         | SPE sampling period                      | `256`   |

use nmo_repro::arch_sim::{MachineConfig, PlacementPolicy};
use nmo_repro::nmo::tiering::{HotPageTracker, NoMigration, TieringPolicy, TieringReport, TopKHot};
use nmo_repro::nmo::{
    BackpressurePolicy, LatencyHistogram, LatencyProfile, LatencySink, NmoConfig, NmoError,
    Profile, ProfileSession, StreamOptions,
};
use nmo_repro::workloads::generators::{rmat_graph, CsrGraph};
use nmo_repro::workloads::{chunk_range, env_or, parallel_on_cores, pc};

const DAMPING: f64 = 0.85;

/// The Table II tiered preset reshaped for the demo: half the pages homed
/// remotely, a deliberately narrow remote link (so remote-homed hot pages
/// visibly queue — the situation migration fixes), and a 2 MiB SLC so the
/// ~9 MiB PageRank working set spills to memory every iteration.
fn machine_config(remote_bw_div: f64) -> MachineConfig {
    let mut cfg =
        MachineConfig::ampere_altra_max_tiered(PlacementPolicy::TierSplit { local_fraction: 0.5 });
    cfg.slc.size_bytes = 2 * 1024 * 1024;
    let local = cfg.mem.nodes[0];
    cfg.mem.nodes[1].peak_bytes_per_cycle = local.peak_bytes_per_cycle / remote_bw_div.max(1.0);
    cfg
}

struct RunConfig {
    threads: usize,
    epochs: usize,
    period: u64,
    remote_bw_div: f64,
}

/// The simulated-address-space layout of the PageRank arrays.
struct PrRegions {
    offsets: u64,
    edges: u64,
    ranks: u64,
    ranks_next: u64,
    out_degree: u64,
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// One tiered PageRank run under `policy`: the graph loads once, then each
/// epoch runs one pull-model power iteration with a tiering step (drain →
/// window closes → policy → migrations) between the epochs.
fn run_policy(
    label: &str,
    policy: impl TieringPolicy + 'static,
    graph: &CsrGraph,
    rc: &RunConfig,
) -> Result<(Profile, TieringReport, Vec<u64>), NmoError> {
    println!("\n-- {label} --");
    let session = ProfileSession::builder()
        .machine_config(machine_config(rc.remote_bw_div))
        .config(NmoConfig {
            name: format!("hot_page_migration_{label}"),
            aux_watermark_bytes: Some(16 * 1024),
            ..NmoConfig::paper_default(rc.period)
        })
        .threads(rc.threads)
        .sink(LatencySink::default())
        .stream_options(StreamOptions { window_ns: 250_000, ..StreamOptions::default() })
        .build()?;

    let n = graph.num_vertices;
    let m = graph.num_edges();
    let mut out_degree = vec![1u32; n];
    for &t in &graph.edges {
        out_degree[t as usize] += 1;
    }
    let mut ranks = vec![1.0 / n as f64; n];
    let mut ranks_next = vec![0.0f64; n];

    let mut active = session.start()?;
    let regions = {
        let machine = active.machine();
        let r = PrRegions {
            offsets: machine.alloc("offsets", (n as u64 + 1) * 4)?.start,
            edges: machine.alloc("edges", m as u64 * 4)?.start,
            ranks: machine.alloc("ranks", n as u64 * 8)?.start,
            ranks_next: machine.alloc("ranks_next", n as u64 * 8)?.start,
            out_degree: machine.alloc("out_degree", n as u64 * 4)?.start,
        };
        // Load phase (once): stream every array, first-touching (and
        // TierSplit-homing) every page.
        parallel_on_cores(machine, active.cores(), |tid, engine| {
            let threads = rc.threads;
            for v in chunk_range(n, threads, tid) {
                engine.store_at(pc::PR_LOAD, r.offsets + (v * 4) as u64, 4);
                engine.store_at(pc::PR_LOAD, r.ranks + (v * 8) as u64, 8);
                engine.store_at(pc::PR_LOAD, r.ranks_next + (v * 8) as u64, 8);
                engine.store_at(pc::PR_LOAD, r.out_degree + (v * 4) as u64, 4);
                for e in graph.offsets[v] as usize..graph.offsets[v + 1] as usize {
                    engine.store_at(pc::PR_LOAD, r.edges + (e * 4) as u64, 4);
                }
                engine.cpu_work(2);
            }
        })?;
        r
    };

    let mut tracker = HotPageTracker::new(policy);
    // Simulated end time of each epoch, for the per-epoch latency split.
    let mut epoch_ends = Vec::with_capacity(rc.epochs);
    for epoch in 0..rc.epochs {
        // One pull-model power iteration (the PageRank gather kernel).
        let ranks_ptr = SendPtr(ranks.as_mut_ptr());
        let next_ptr = SendPtr(ranks_next.as_mut_ptr());
        let out_degree = &out_degree;
        let r = &regions;
        parallel_on_cores(active.machine(), active.cores(), |tid, engine| {
            let (ranks, next) = (ranks_ptr, next_ptr);
            for v in chunk_range(n, rc.threads, tid) {
                engine.load_at(pc::PR_GATHER, r.offsets + (v * 4) as u64, 4);
                engine.load_at(pc::PR_GATHER, r.offsets + ((v + 1) * 4) as u64, 4);
                let mut acc = 0.0f64;
                let e0 = graph.offsets[v] as usize;
                for (j, &u) in graph.neighbors(v).iter().enumerate() {
                    let u = u as usize;
                    engine.load_at(pc::PR_GATHER, r.edges + ((e0 + j) * 4) as u64, 4);
                    engine.load_at(pc::PR_GATHER, r.ranks + (u * 8) as u64, 8);
                    engine.load_at(pc::PR_GATHER, r.out_degree + (u * 4) as u64, 4);
                    acc += unsafe { *ranks.0.add(u) } / out_degree[u] as f64;
                }
                engine.store_at(pc::PR_GATHER, r.ranks_next + (v * 8) as u64, 8);
                unsafe { *next.0.add(v) = (1.0 - DAMPING) / n as f64 + DAMPING * acc };
                engine.flops((2 * graph.degree(v) + 3) as u64);
                engine.cpu_work(4);
            }
        })?;
        std::mem::swap(&mut ranks, &mut ranks_next);

        // Actuate: tiering_step drains synchronously (gated against the
        // SPE monitor thread, so it sees every record published so far),
        // closes the elapsed windows, and applies the policy's decisions.
        let applied = active.tiering_step(&mut tracker)?;
        epoch_ends.push(active.machine().makespan_ns());
        let rss = active.machine().vm().rss_bytes_by_node();
        println!(
            "  epoch {epoch}: {:>3} pages promoted this step, RSS local {:>5.1} MiB / remote {:>5.1} MiB",
            applied.len(),
            rss[0] as f64 / (1u64 << 20) as f64,
            rss[1] as f64 / (1u64 << 20) as f64,
        );
    }

    // PageRank sanity: ranks stay a (leaky) distribution.
    let sum: f64 = ranks.iter().sum();
    if !(ranks.iter().all(|r| *r >= 0.0 && r.is_finite()) && sum > 0.4 && sum < 1.05) {
        return Err(NmoError::Workload(format!("pagerank diverged: rank sum {sum}")));
    }
    let report = tracker.report();
    let mut profile = active.finish()?;
    // Surface the manually driven report on the profile, exactly like the
    // sink path would, so summary() and the CSV reports carry it.
    profile.attach_tiering(report.clone());
    Ok((profile, report, epoch_ends))
}

/// Split a run's decoded samples at the epoch boundaries and build one
/// latency profile per epoch.
fn per_epoch_latency(profile: &Profile, epoch_ends: &[u64]) -> Vec<LatencyProfile> {
    let mut epochs = vec![LatencyProfile::new(); epoch_ends.len()];
    for s in &profile.samples {
        let epoch = epoch_ends.partition_point(|&end| end <= s.time_ns);
        if let Some(p) = epochs.get_mut(epoch) {
            p.record(s.source, s.latency);
        }
    }
    epochs
}

fn tier_line(label: &str, hist: &LatencyHistogram) {
    if hist.count() == 0 {
        println!("    {label:<22} (no samples)");
    } else {
        println!(
            "    {label:<22} {:>8} samples  p50 {:>7.0}c  p99 {:>7.0}c",
            hist.count(),
            hist.p50(),
            hist.p99()
        );
    }
}

fn main() -> Result<(), NmoError> {
    let rc = RunConfig {
        threads: env_or("NMO_HPM_THREADS", 1usize).max(1),
        epochs: env_or("NMO_HPM_EPOCHS", 5usize).max(2),
        period: env_or("NMO_HPM_PERIOD", 256u64).max(1),
        remote_bw_div: env_or("NMO_HPM_REMOTE_BW_DIV", 256.0f64),
    };
    println!("== profile-guided page migration: PageRank under TierSplit(0.5) ==");
    let graph = rmat_graph(1 << 17, 12, 0x9A6E);

    let (nomig_profile, _, nomig_epoch_ends) =
        run_policy("no-migration", NoMigration, &graph, &rc)?;
    let nomig_latency = nomig_profile.latency();
    let (nomig_local, nomig_remote) = (nomig_latency.local_dram(), nomig_latency.remote_dram());
    tier_line("local DRAM", &nomig_local);
    tier_line("remote DRAM", &nomig_remote);
    assert!(nomig_remote.count() > 0, "control arm must see remote traffic");
    assert_eq!(nomig_profile.migrations.migrations, 0, "control arm never migrates");

    // Promote the hottest remote pages under a bounded budget: the
    // random-access rank/degree pages — highest DRAM heat per page — get
    // promoted; the streamed edge pages stay remote and keep the tier
    // observable.
    let topk = env_or("NMO_HPM_TOPK", 8usize).max(1);
    let budget = env_or("NMO_HPM_BUDGET", 48u64).max(1);
    let policy = TopKHot::new(topk, 1).with_budget(budget);
    let (topk_profile, topk_report, topk_epoch_ends) =
        run_policy("top-k-hot", policy, &graph, &rc)?;
    println!("  before the first migration:");
    tier_line("local DRAM", &topk_report.before.local_dram());
    tier_line("remote DRAM", &topk_report.before.remote_dram());
    println!("  settled (after the last migration):");
    tier_line("local DRAM", &topk_report.settled.local_dram());
    tier_line("remote DRAM", &topk_report.settled.remote_dram());
    assert!(topk_report.migrations() > 0, "the policy promoted hot pages");
    assert!(topk_report.promoted_bytes() > 0);
    assert_eq!(topk_profile.migrations.migrations, topk_report.migrations());

    // Per-epoch, like-for-like comparison: the same power iteration of the
    // same graph, with and without the hot pages promoted.
    let nomig_epochs = per_epoch_latency(&nomig_profile, &nomig_epoch_ends);
    let topk_epochs = per_epoch_latency(&topk_profile, &topk_epoch_ends);
    println!("\n  per-epoch remote DRAM latency (NoMigration vs TopKHot):");
    println!(
        "    {:<7} {:>10} {:>9} {:>9}   {:>10} {:>9} {:>9}",
        "epoch", "nomig n", "p50", "p99", "topk n", "p50", "p99"
    );
    for (i, (nm, tk)) in nomig_epochs.iter().zip(&topk_epochs).enumerate() {
        let (nm_r, tk_r) = (nm.remote_dram(), tk.remote_dram());
        println!(
            "    {:<7} {:>10} {:>9.0} {:>9.0}   {:>10} {:>9.0} {:>9.0}",
            i,
            nm_r.count(),
            nm_r.p50(),
            nm_r.p99(),
            tk_r.count(),
            tk_r.p50(),
            tk_r.p99()
        );
    }

    // The headline: with the hot pages promoted, the narrow remote link
    // decongests and the remote-DRAM tail latency of the late (settled)
    // epochs drops from the NoMigration level toward the local tier.
    let last = rc.epochs - 1;
    let (nomig_last, topk_last) =
        (nomig_epochs[last].remote_dram(), topk_epochs[last].remote_dram());
    assert!(
        topk_last.count() > 0,
        "the budgeted policy leaves cold pages remote, keeping the tier observable"
    );
    assert!(
        topk_last.p99() < nomig_last.p99(),
        "remote p99 must drop after promotion: epoch {last}: {} vs NoMigration {}",
        topk_last.p99(),
        nomig_last.p99()
    );
    println!(
        "\n  epoch {last} remote DRAM p99: {:.0}c (NoMigration) -> {:.0}c (TopKHot); \
         local p99 {:.0}c",
        nomig_last.p99(),
        topk_last.p99(),
        topk_epochs[last].local_dram().p99()
    );

    // Migration counts surface in the summary line and the CSV reports.
    let summary = topk_profile.summary();
    assert!(summary.contains("page migrations"), "{summary}");
    println!("\n{summary}");
    let written = topk_profile.write_csv_reports("results/hot_page_migration")?;
    assert!(written.iter().any(|f| f.ends_with("_migrations.csv")));
    assert!(written.iter().any(|f| f.ends_with("_tiering.csv")));
    println!("wrote {} CSV report files under results/hot_page_migration/", written.len());

    // Streaming arm: the tracker registered as a sink migrates mid-run from
    // the consumer thread, and the incremental sink aggregation still
    // equals a post-hoc scan of the same run's samples.
    println!("\n-- streaming actuation (sink path) --");
    let session = ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.1,
        }))
        .config(NmoConfig {
            name: "hot_page_migration_streaming".into(),
            aux_watermark_bytes: Some(4096),
            ..NmoConfig::paper_default(64)
        })
        .threads(2)
        .sink(LatencySink::default())
        .sink(HotPageTracker::new(TopKHot::new(8, 1)))
        .stream_options(StreamOptions {
            window_ns: 100_000,
            backpressure: BackpressurePolicy::Block,
            ..StreamOptions::default()
        })
        .build()?;
    let profile = session.run_streaming_with(|machine, _annotations, cores| {
        let page = machine.config().page_bytes;
        let region = machine.alloc("data", 64 * page)?;
        std::thread::scope(|s| {
            for (t, &core) in cores.iter().enumerate() {
                let region = region.clone();
                s.spawn(move || {
                    let mut e = machine.attach(core).expect("attach");
                    let base = region.start + t as u64 * 32 * page;
                    for i in 0..150_000u64 {
                        e.load(base + (i % 4) * page + (i % 64) * 8, 8);
                        e.load(base + 4 * page + (i * 64) % (28 * page), 8);
                    }
                });
            }
        });
        Ok(())
    })?;
    assert!(profile.migrations.migrations > 0, "streaming sink migrated mid-run");
    assert_eq!(
        profile.latency(),
        LatencyProfile::from_samples(&profile.samples),
        "streaming == post-hoc with migrations active"
    );
    println!(
        "  {} migrations applied mid-run; streaming latency histograms == post-hoc scan \
         ({} samples)",
        profile.migrations.migrations, profile.processed_samples
    );
    Ok(())
}
