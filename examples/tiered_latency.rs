//! Tiered-memory latency profiling: the paper's DDR-vs-CXL comparison,
//! end to end.
//!
//! A two-node machine (local DDR plus a CXL-style remote node with higher
//! idle latency and lower peak bandwidth) runs STREAM and PageRank under a
//! sweep of `TierSplit` page-placement ratios. For each ratio the profiler
//! builds per-data-source latency distributions (log2 histograms with
//! p50/p90/p99), per-node capacity and bandwidth splits, and verifies the
//! tiering signature: the remote-node latency mode sits strictly above the
//! local one. A final single-threaded streaming run proves the online
//! pipeline reproduces the post-hoc histograms exactly, while polling the
//! live per-tier sample counts.
//!
//! ```text
//! cargo run --release --example tiered_latency
//! ```
//!
//! Environment knobs:
//!
//! | Variable                  | Meaning                                   | Default       |
//! |---------------------------|-------------------------------------------|---------------|
//! | `NMO_TIER_RATIOS`         | comma-separated local-DDR page fractions  | `0.9,0.5,0.1` |
//! | `NMO_TIER_REMOTE_LAT_MULT`| remote idle latency (x local)             | `3`           |
//! | `NMO_TIER_REMOTE_BW_DIV`  | remote peak bandwidth (local / this)      | `4`           |
//! | `NMO_TIER_WORKLOAD`       | `stream`, `pagerank`, or `both`           | `both`        |
//! | `NMO_TIER_THREADS`        | worker threads (= profiled cores)         | `4`           |
//! | `NMO_TIER_PERIOD`         | SPE sampling period                       | `1024`        |

use nmo_repro::arch_sim::{MachineConfig, PlacementPolicy};
use nmo_repro::nmo::{
    BandwidthSink, CapacitySink, LatencySink, NmoConfig, NmoError, Profile, ProfileSession,
    Workload,
};
use nmo_repro::workloads::{env_or, PageRank, StreamBench};

fn ratios_from_env() -> Vec<f64> {
    std::env::var("NMO_TIER_RATIOS")
        .map(|v| v.split(',').filter_map(|r| r.trim().parse().ok()).collect())
        .ok()
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![0.9, 0.5, 0.1])
}

/// The Table II tiered preset with the remote node's latency and bandwidth
/// reshaped by the `NMO_TIER_*` knobs.
fn tiered_machine(placement: PlacementPolicy) -> MachineConfig {
    let lat_mult: u64 = env_or("NMO_TIER_REMOTE_LAT_MULT", 3).max(1);
    let bw_div: f64 = env_or("NMO_TIER_REMOTE_BW_DIV", 4.0f64).max(1.0);
    let mut cfg = MachineConfig::ampere_altra_max_tiered(placement);
    let local = cfg.mem.nodes[0];
    cfg.mem.nodes[1].latency_cycles = local.latency_cycles * lat_mult;
    cfg.mem.nodes[1].peak_bytes_per_cycle = local.peak_bytes_per_cycle / bw_div;
    cfg
}

fn workload_named(name: &str) -> Box<dyn Workload> {
    match name {
        "stream" => Box::new(StreamBench::new(1_500_000, 2)),
        _ => Box::new(PageRank::new(1 << 17, 12, 2)),
    }
}

fn run_once(
    workload: &str,
    placement: PlacementPolicy,
    threads: usize,
    period: u64,
) -> Result<Profile, NmoError> {
    ProfileSession::builder()
        .machine_config(tiered_machine(placement))
        .config(NmoConfig {
            name: format!("tiered_{workload}"),
            ..NmoConfig::paper_default(period)
        })
        .threads(threads)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(LatencySink::default())
        .workload(workload_named(workload))
        .build()?
        .run()
}

fn print_latency_table(profile: &Profile) {
    println!(
        "    {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "source", "samples", "mean", "p50", "p90", "p99"
    );
    for (source, hist) in &profile.latency().per_source {
        println!(
            "    {:<16} {:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            format!("{source:?}"),
            hist.count(),
            hist.mean(),
            hist.p50(),
            hist.p90(),
            hist.p99()
        );
    }
}

fn main() -> Result<(), NmoError> {
    let ratios = ratios_from_env();
    let threads: usize = env_or("NMO_TIER_THREADS", 4).max(1);
    let period: u64 = env_or("NMO_TIER_PERIOD", 1024).max(1);
    let workloads: Vec<&str> = match std::env::var("NMO_TIER_WORKLOAD").as_deref() {
        Ok("stream") => vec!["stream"],
        Ok("pagerank") => vec!["pagerank"],
        _ => vec!["stream", "pagerank"],
    };

    println!("== tiered-memory latency profiling (local DDR + CXL-style remote node) ==");
    for workload in &workloads {
        println!("\n-- {workload}: TierSplit sweep over local fractions {ratios:?} --");
        for &local_fraction in &ratios {
            let placement = PlacementPolicy::TierSplit { local_fraction };
            let profile = run_once(workload, placement, threads, period)?;
            let latency = profile.latency();
            let (local, remote) = (latency.local_dram(), latency.remote_dram());
            println!(
                "\n  local_fraction={local_fraction}: RSS local {:.3} GiB / remote {:.3} GiB, \
                 traffic local {:.1}% / remote {:.1}%",
                profile.capacity.peak_gib_on(0),
                profile.capacity.peak_gib_on(1),
                profile.bandwidth.node_traffic_share(0) * 100.0,
                profile.bandwidth.node_traffic_share(1) * 100.0,
            );
            print_latency_table(&profile);

            // The paper's tiering signature: with pages on both tiers the
            // DRAM latency distribution is bimodal — the remote mode sits
            // strictly above the local one.
            if local_fraction > 0.0 && local_fraction < 1.0 && remote.count() > 0 {
                assert!(
                    latency.dram_tiers_bimodal(),
                    "expected bimodal DRAM latencies: local p50 {} remote p50 {}",
                    local.p50(),
                    remote.p50()
                );
                println!(
                    "    => bimodal: local DRAM p50 {:.0}c < remote DRAM p50 {:.0}c",
                    local.p50(),
                    remote.p50()
                );
            }
        }
    }

    // Streaming == post-hoc for the latency histograms, live per-tier
    // counts along the way (single-threaded => deterministic simulation).
    println!("\n-- streaming equivalence (single-threaded STREAM, local_fraction=0.5) --");
    let placement = PlacementPolicy::TierSplit { local_fraction: 0.5 };
    let build = || -> Result<ProfileSession, NmoError> {
        ProfileSession::builder()
            .machine_config(tiered_machine(placement))
            .config(NmoConfig {
                name: "tiered_streaming".into(),
                ..NmoConfig::paper_default(period)
            })
            .threads(1)
            .sink(CapacitySink::default())
            .sink(BandwidthSink::default())
            .sink(LatencySink::default())
            .build()
    };

    let mut workload = StreamBench::new(400_000, 2);
    let session = build()?;
    workload.setup(session.machine(), &session.annotations())?;
    let active = session.start_streaming()?;
    let report = std::thread::scope(|s| {
        let machine = active.machine();
        let annotations = active.annotations_ref();
        let cores = active.cores();
        let workload = &mut workload;
        let handle = s.spawn(move || workload.run(machine, annotations, cores));
        let mut last = (0u64, 0u64);
        while !handle.is_finished() {
            if let Some(snap) = active.poll_snapshot() {
                let tiers = snap.dram_tier_counts();
                if tiers != last {
                    println!(
                        "    live: {} samples so far — DRAM local {} / remote {}",
                        snap.spe_samples, tiers.0, tiers.1
                    );
                    last = tiers;
                }
            }
            #[allow(clippy::disallowed_methods)] // example: live-report cadence
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        handle.join().expect("workload thread")
    })?;
    let streamed = active.finish()?;
    assert!(workload.verify(), "STREAM verification failed");
    println!("    workload moved {} memory ops", report.mem_ops);

    let mut post_workload = StreamBench::new(400_000, 2);
    let session = build()?;
    post_workload.setup(session.machine(), &session.annotations())?;
    let active = session.start()?;
    post_workload.run(active.machine(), active.annotations_ref(), active.cores())?;
    let post_hoc = active.finish()?;

    assert_eq!(
        streamed.latency(),
        post_hoc.latency(),
        "streaming latency histograms must equal the post-hoc scan"
    );
    println!(
        "    streaming == post-hoc: {} samples, identical per-source histograms",
        streamed.processed_samples
    );

    println!("\n{}", streamed.summary());
    let written = streamed.write_csv_reports("results/tiered_latency")?;
    println!("wrote {} CSV report files under results/tiered_latency/", written.len());
    Ok(())
}
