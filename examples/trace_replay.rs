//! Record once, replay many times: the trace store end to end.
//!
//! A streaming PageRank profiling run executes exactly once, with a
//! [`nmo::TraceWriterSink`] riding the sharded pipeline
//! (`ProfileSession::trace_dir`). Everything afterwards happens **without
//! re-simulation**, straight from the stored segments:
//!
//! 1. **Bit-for-bit replay** — a fresh `LatencySink` fed by sequential
//!    replay must produce the identical report the live run produced
//!    (asserted on the Debug rendering, the strictest cheap equality).
//! 2. **What-if tiering analysis** — the same trace replays through two
//!    [`HotPageTracker`] policies, `NoMigration` and `TopKHot`. Replay has
//!    no machine to actuate on, so decisions are *computed but not
//!    applied*: the example counts the promotions each policy would have
//!    issued — a migration plan derived offline from a stored run.
//! 3. **Sliced indexed queries** — `TraceReader::replay_query` uses the
//!    per-segment footer index to prune blocks: the first half of the
//!    timeline, then a single core, each through its own `LatencySink`.
//!
//! The example prints the wall-clock of the original (simulate + record)
//! run against each replay, and asserts replays are faster — the point of
//! storing a trace is that revisiting a run costs milliseconds, not a
//! re-simulation.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nmo_repro::arch_sim::{MachineConfig, PlacementPolicy};
use nmo_repro::nmo::tiering::{
    HotPageTracker, MigrationDecision, NoMigration, TieringPolicy, TieringView, TopKHot,
};
use nmo_repro::nmo::trace::replay_finish;
use nmo_repro::nmo::{
    AnalysisReport, AnalysisSink, LatencySink, NmoConfig, NmoError, Profile, ProfileSession,
    StreamOptions, TraceQuery, TraceReader,
};
use nmo_repro::workloads::PageRank;

/// Wraps any [`TieringPolicy`] and counts the decisions it makes, so the
/// would-be migration plan survives the replay (the boxed sink itself is
/// consumed by the sink registry). Atomics keep it `Send` without a lock.
struct WhatIf<P> {
    inner: P,
    decisions: Arc<AtomicU64>,
    decision_windows: Arc<AtomicU64>,
    first_page: Arc<AtomicU64>,
}

impl<P: TieringPolicy> TieringPolicy for WhatIf<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, window_index: u64, view: &TieringView<'_>) -> Vec<MigrationDecision> {
        let decided = self.inner.decide(window_index, view);
        if !decided.is_empty() {
            self.decisions.fetch_add(decided.len() as u64, Ordering::Relaxed);
            self.decision_windows.fetch_add(1, Ordering::Relaxed);
            // Remember the first page the plan would promote (0 = unset;
            // page addresses here are never 0, the heap is high).
            self.first_page
                .compare_exchange(0, decided[0].page_addr, Ordering::Relaxed, Ordering::Relaxed)
                .ok();
        }
        decided
    }
}

/// Counters handle returned alongside a wrapped policy.
struct WhatIfStats {
    decisions: Arc<AtomicU64>,
    decision_windows: Arc<AtomicU64>,
    first_page: Arc<AtomicU64>,
}

fn what_if<P: TieringPolicy>(inner: P) -> (WhatIf<P>, WhatIfStats) {
    let decisions = Arc::new(AtomicU64::new(0));
    let decision_windows = Arc::new(AtomicU64::new(0));
    let first_page = Arc::new(AtomicU64::new(0));
    let stats = WhatIfStats {
        decisions: decisions.clone(),
        decision_windows: decision_windows.clone(),
        first_page: first_page.clone(),
    };
    (WhatIf { inner, decisions, decision_windows, first_page }, stats)
}

fn latency_debug(profile: &Profile) -> String {
    let record = profile
        .analyses
        .iter()
        .find(|r| r.sink == "latency")
        .expect("live run registered a LatencySink");
    format!("{:?}", record.report)
}

fn main() -> Result<(), NmoError> {
    let dir = std::env::temp_dir().join(format!("nmo_trace_replay_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // -- The one and only simulation: stream PageRank, record the trace. --
    println!("== trace replay: record a PageRank run once, revisit it offline ==");
    let started = Instant::now();
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.5,
        }))
        .config(NmoConfig::paper_default(100))
        .threads(4)
        .sink(LatencySink::default())
        .trace_dir(dir.clone())
        .stream_options(StreamOptions { window_ns: 100_000, shards: 4, ..StreamOptions::default() })
        .workload(Box::new(PageRank::new(1 << 12, 8, 3)))
        .build()?
        .run_streaming()?;
    let live_ms = started.elapsed().as_secs_f64() * 1e3;
    let live_latency = latency_debug(&profile);

    let reader = TraceReader::open(&dir)?;
    let summary = reader.summary();
    println!(
        "  recorded {} samples in {} segment(s), {} bytes ({:.2} bytes/sample), {:.1} ms live",
        summary.samples,
        summary.shards,
        summary.bytes,
        summary.bytes as f64 / summary.samples.max(1) as f64,
        live_ms,
    );

    // -- 1. Sequential replay: bit-for-bit the live latency report. --
    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let started = Instant::now();
    let stats = reader.replay(&mut sinks)?;
    let seq_ms = started.elapsed().as_secs_f64() * 1e3;
    let records = replay_finish(&mut sinks)?;
    assert_eq!(
        format!("{:?}", records[0].report),
        live_latency,
        "sequential replay must reproduce the live latency report bit for bit"
    );
    println!(
        "  sequential replay: {} samples over {} windows in {:.1} ms ({:.0}x faster than live) — report identical",
        stats.samples,
        stats.windows,
        seq_ms,
        live_ms / seq_ms.max(1e-9),
    );

    // -- 2. What-if tiering: two policies over the same stored run. --
    let (control, control_stats) = what_if(NoMigration);
    let (topk, topk_stats) = what_if(TopKHot::new(8, 1).with_budget(u64::MAX));
    let mut sinks: Vec<Box<dyn AnalysisSink>> =
        vec![Box::new(HotPageTracker::new(control)), Box::new(HotPageTracker::new(topk))];
    let started = Instant::now();
    reader.replay(&mut sinks)?;
    let tier_ms = started.elapsed().as_secs_f64() * 1e3;
    let records = replay_finish(&mut sinks)?;
    for record in &records {
        let AnalysisReport::Tiering(report) = &record.report else {
            panic!("tiering sinks report AnalysisReport::Tiering");
        };
        println!(
            "  policy {:<12} tracked {} pages over {} windows, {} applied (replay never actuates)",
            report.policy,
            report.pages_tracked,
            report.windows_closed,
            report.applied.len(),
        );
    }
    let control_n = control_stats.decisions.load(Ordering::Relaxed);
    let topk_n = topk_stats.decisions.load(Ordering::Relaxed);
    println!(
        "  what-if plans from one replay pass ({tier_ms:.1} ms): no-migration would move {} pages; \
         top-k-hot would promote {} pages across {} windows (first: {:#x})",
        control_n,
        topk_n,
        topk_stats.decision_windows.load(Ordering::Relaxed),
        topk_stats.first_page.load(Ordering::Relaxed),
    );
    assert_eq!(control_n, 0, "the control policy never decides");
    assert!(topk_n > 0, "TopKHot finds hot remote pages under TierSplit(0.5)");

    // -- 3. Indexed queries: footer index prunes blocks before decode. --
    let last_window = stats.windows.saturating_sub(1);
    let half = TraceQuery::all().with_windows(0, last_window / 2);
    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let started = Instant::now();
    let half_stats = reader.replay_query(&half, &mut sinks)?;
    let half_ms = started.elapsed().as_secs_f64() * 1e3;
    replay_finish(&mut sinks)?;

    let core0 = TraceQuery::all().with_cores([0]);
    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let core0_stats = reader.replay_query(&core0, &mut sinks)?;
    replay_finish(&mut sinks)?;

    println!(
        "  indexed query, first half of the timeline: {} of {} samples, {} of {} blocks decoded, {:.1} ms",
        half_stats.samples, stats.samples, half_stats.blocks, stats.blocks, half_ms,
    );
    println!(
        "  indexed query, core 0 only: {} of {} samples across {} worker thread(s)",
        core0_stats.samples,
        stats.samples,
        reader.shards(),
    );
    assert!(half_stats.samples < stats.samples, "the window slice prunes samples");
    assert!(half_stats.blocks < stats.blocks, "the index prunes whole blocks, not just samples");
    assert!(core0_stats.samples < stats.samples, "the core slice prunes samples");
    assert!(
        seq_ms < live_ms && half_ms < live_ms,
        "replay reads the trace; it must beat re-simulating the run"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("  ok: one simulation, four offline analyses.");
    Ok(())
}
