//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Implements the surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`Throughput`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock harness: each benchmark is warmed up, then timed over
//! `sample_size` samples, and the per-iteration mean plus derived throughput
//! is printed. No statistics files or HTML reports are produced.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (scales the printed rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: u32,
    per_iter_ns: f64,
}

impl Bencher {
    /// Measure `routine`: warm up, then time `samples` batches and record the
    /// mean time per iteration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: find how many iterations fit in
        // ~5 ms so short routines are timed over a meaningful window.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.per_iter_ns = if iters == 0 { 0.0 } else { total.as_nanos() as f64 / iters as f64 };
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, per_iter_ns: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_s = if per_iter_ns > 0.0 { count as f64 / (per_iter_ns * 1e-9) } else { 0.0 };
        format!("  ({per_s:.3e} {unit})")
    });
    println!("bench: {name:<50} {:>12}{}", human_time(per_iter_ns), rate.unwrap_or_default());
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Run a single benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, per_iter_ns: 0.0 };
        f(&mut b);
        report(name, b.per_iter_ns, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.criterion.sample_size, per_iter_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.per_iter_ns, self.throughput);
        self
    }

    /// Close the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function from a list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_cheap_routine() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Bytes(8));
        group.bench_function("noop", |b| b.iter(|| black_box(0u8)));
        group.finish();
    }

    fn target(c: &mut Criterion) {
        c.bench_function("macro_target", |b| b.iter(|| black_box(3u32)));
    }

    criterion_group!(shim_benches, target);

    #[test]
    fn group_macro_expands_and_runs() {
        shim_benches();
    }
}
