//! Offline drop-in subset of the `rand` API.
//!
//! Provides the exact surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], and [`Rng::gen_range`] over
//! integer ranges — backed by a xoshiro256** generator seeded through
//! SplitMix64. Streams are deterministic per seed (the property the
//! experiment harness relies on) but are *not* bit-compatible with the real
//! `rand` crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible from a uniform bit stream (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)`; `span == 0` means the full domain.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Multiply-shift (Lemire) mapping: fast and near-unbiased for the spans
    // used here; bias is < span / 2^64.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64; // may wrap to 0 for the full u64 domain
                lo.wrapping_add(uniform_below(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(uniform_below(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard generator: xoshiro256** (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // xoshiro must not start in the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
        // Full-domain inclusive range must not panic or bias to a constant.
        let full: Vec<u64> = (0..8).map(|_| r.gen_range(0u64..=u64::MAX)).collect();
        assert!(full.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn range_values_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }
}
