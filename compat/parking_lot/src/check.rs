//! Runtime lock-order checker (the dynamic arm of the repo's concurrency
//! analysis; the static arm is `nmo-lint`'s `lock-order` pass).
//!
//! Enabled by `NMO_LOCK_CHECK=1` in the environment (read once, at the first
//! acquisition) or programmatically with [`force_enable`]. See the crate
//! docs for the model; in short, the checker maintains
//!
//! * a per-thread stack of currently-held lock instances,
//! * a global directed graph of observed `held -> acquired` edges, and
//! * per-name acquisition counts and maximum hold times.
//!
//! Before a thread *blocks* on a lock it asks: starting from the lock I
//! want, can the graph already reach any lock I hold? If yes, some thread
//! acquired these locks in the opposite order, and the process panics with
//! both names — turning a timing-dependent deadlock into a deterministic
//! test failure at the first inverted acquisition.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use crate::LockStats;

/// Checker mode: 0 = not yet initialised, 1 = off, 2 = on.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Allocator for lock-instance ids; 0 is reserved for "not yet assigned".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Whether the checker is active. The fast path — checker off — is a single
/// relaxed load per acquisition.
fn enabled() -> bool {
    // relaxed-ok: MODE is a monotone latch (0 -> 1|2); a stale read of 0
    // only sends us down the one-time init path again, which is idempotent.
    match MODE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("NMO_LOCK_CHECK").map(|v| v == "1").unwrap_or(false);
            // relaxed-ok: latch publish; see above.
            MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turn the checker on for this process regardless of `NMO_LOCK_CHECK`.
/// Intended for tests; there is deliberately no way to turn it back off
/// (disabling mid-flight would orphan held-stack entries).
pub fn force_enable() {
    // relaxed-ok: monotone latch publish; see `enabled`.
    MODE.store(2, Ordering::Relaxed);
}

thread_local! {
    /// `(id, exclusive)` for the locks the current thread holds, in
    /// acquisition order. Names and hold timers live on the guards'
    /// [`Tracked`] tokens.
    static HELD: std::cell::RefCell<Vec<(u64, bool)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Global acquisition graph and statistics. Guarded by a *raw* std mutex:
/// the checker must not recurse into the instrumented types.
struct Graph {
    /// `edges[a]` contains `b` iff some thread held `a` while acquiring `b`.
    edges: HashMap<u64, HashSet<u64>>,
    /// Lock-instance id -> diagnostics name ("" for unnamed).
    names: HashMap<u64, &'static str>,
    /// Per-name acquisition count and max hold time.
    stats: HashMap<&'static str, (u64, Duration)>,
}

static GRAPH: std::sync::Mutex<Option<Graph>> = std::sync::Mutex::new(None);

fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    let mut slot = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    let graph = slot.get_or_insert_with(|| Graph {
        edges: HashMap::new(),
        names: HashMap::new(),
        stats: HashMap::new(),
    });
    f(graph)
}

/// Lazily assign a stable nonzero id to a lock instance.
fn id_of(slot: &AtomicU64, name: &'static str) -> u64 {
    // relaxed-ok: the id is its own payload (compared for equality only);
    // losing the CAS race just means we adopt the winner's id.
    let existing = slot.load(Ordering::Relaxed);
    if existing != 0 {
        return existing;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed); // relaxed-ok: as above
    let id = match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(winner) => winner, // relaxed-ok: as above
    };
    with_graph(|g| {
        g.names.entry(id).or_insert(name);
    });
    id
}

fn display_name(names: &HashMap<u64, &'static str>, id: u64) -> String {
    match names.get(&id) {
        Some(n) if !n.is_empty() => format!("`{n}` (#{id})"),
        _ => format!("<unnamed> (#{id})"),
    }
}

/// Is `to` reachable from `from` via recorded edges?
fn reachable(edges: &HashMap<u64, HashSet<u64>>, from: u64, to: u64) -> bool {
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = edges.get(&node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// A planned acquisition: carries the id/name from the pre-acquire check to
/// [`acquired`] once the lock is actually held.
pub(crate) struct Plan {
    id: u64,
    name: &'static str,
    exclusive: bool,
}

/// Token held by a live guard; returned to the checker on release.
pub(crate) struct Tracked {
    id: u64,
    name: &'static str,
    exclusive: bool,
    since: Instant,
}

/// Pre-acquire hook for a blocking acquisition: records `held -> wanted`
/// edges and panics if the wanted lock can already reach a held one (order
/// inversion) or *is* a held one (self-deadlock). `exclusive` is false only
/// for `RwLock::read`: a recursive shared read is tolerated (ubiquitous and
/// legal, though it can still stall behind a queued writer — a hazard this
/// checker deliberately leaves to the static lint's judgment).
pub(crate) fn before_blocking_acquire(
    slot: &AtomicU64,
    name: &'static str,
    exclusive: bool,
) -> Option<Plan> {
    if !enabled() {
        return None;
    }
    let id = id_of(slot, name);
    HELD.with(|held| {
        let held = held.borrow();
        if held.iter().any(|&(h, h_excl)| h == id && (h_excl || exclusive)) {
            panic!(
                "lock-order checker: self-deadlock — thread already holds {} and is \
                 about to block on it again",
                with_graph(|g| display_name(&g.names, id)),
            );
        }
        with_graph(|g| {
            for &(h, _) in held.iter() {
                if h == id {
                    continue; // recursive shared read; no self-edge
                }
                if reachable(&g.edges, id, h) {
                    panic!(
                        "lock-order checker: inversion — about to block on {wanted} while \
                         holding {held}, but the process has already acquired {wanted} \
                         before {held}; two threads using these orders can deadlock",
                        wanted = display_name(&g.names, id),
                        held = display_name(&g.names, h),
                    );
                }
                g.edges.entry(h).or_default().insert(id);
            }
        });
    });
    Some(Plan { id, name, exclusive })
}

/// Pre-acquire hook for a *successful* non-blocking acquisition: records the
/// same edges (they constrain later blocking acquisitions) but never panics,
/// since a `try_lock` cannot deadlock the caller.
pub(crate) fn before_try_acquire(
    slot: &AtomicU64,
    name: &'static str,
    exclusive: bool,
) -> Option<Plan> {
    if !enabled() {
        return None;
    }
    let id = id_of(slot, name);
    HELD.with(|held| {
        let held = held.borrow();
        with_graph(|g| {
            for &(h, _) in held.iter() {
                if h != id {
                    g.edges.entry(h).or_default().insert(id);
                }
            }
        });
    });
    Some(Plan { id, name, exclusive })
}

/// Post-acquire hook: push onto the thread's held stack and start the hold
/// timer. Also used to re-register a lock after a condvar wait (the plan
/// from [`released_for_wait`] skips the order check by construction).
pub(crate) fn acquired(plan: Plan) -> Tracked {
    let track =
        Tracked { id: plan.id, name: plan.name, exclusive: plan.exclusive, since: Instant::now() };
    HELD.with(|held| held.borrow_mut().push((track.id, track.exclusive)));
    track
}

/// Release hook: pop the held stack (releases may be out of LIFO order) and
/// fold the hold time into the per-name statistics.
pub(crate) fn released(track: Tracked) {
    let hold = track.since.elapsed();
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(h, _)| h == track.id) {
            held.remove(pos);
        }
    });
    let key = if track.name.is_empty() { "<unnamed>" } else { track.name };
    with_graph(|g| {
        let (count, max) = g.stats.entry(key).or_insert((0, Duration::ZERO));
        *count += 1;
        if hold > *max {
            *max = hold;
        }
    });
}

/// Release hook for [`crate::Condvar::wait_until`]: identical accounting to
/// [`released`], but hands back a [`Plan`] so the post-wait reacquisition
/// can re-register without an order check (the wait-loop pattern holds only
/// this lock, and the checker cannot distinguish a wakeup from a fresh
/// acquisition anyway).
pub(crate) fn released_for_wait(track: Tracked) -> Plan {
    let plan = Plan { id: track.id, name: track.name, exclusive: track.exclusive };
    released(track);
    plan
}

/// Snapshot the per-name statistics, sorted by name (see
/// [`crate::lock_report`]).
pub(crate) fn report() -> Vec<LockStats> {
    let mut out: Vec<LockStats> = with_graph(|g| {
        g.stats
            .iter()
            .map(|(name, (count, max))| LockStats {
                name,
                acquisitions: *count,
                max_hold_ns: max.as_nanos().min(u64::MAX as u128) as u64,
            })
            .collect()
    });
    out.sort_by_key(|s| s.name);
    out
}

/// The observed acquisition-order edges as `(held, then_acquired)` name
/// pairs, deduplicated and sorted. Unnamed locks report as `<unnamed>#id`.
/// Intended for tests that cross-validate the static lock-order graph.
pub fn order_edges() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = with_graph(|g| {
        let pretty = |id: u64| match g.names.get(&id) {
            Some(n) if !n.is_empty() => (*n).to_string(),
            _ => format!("<unnamed>#{id}"),
        };
        g.edges
            .iter()
            .flat_map(|(from, tos)| tos.iter().map(move |to| (*from, *to)))
            .map(|(from, to)| (pretty(from), pretty(to)))
            .collect()
    });
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_walks_transitive_edges() {
        let mut edges: HashMap<u64, HashSet<u64>> = HashMap::new();
        edges.entry(1).or_default().insert(2);
        edges.entry(2).or_default().insert(3);
        assert!(reachable(&edges, 1, 3));
        assert!(!reachable(&edges, 3, 1));
        assert!(reachable(&edges, 2, 2), "a node reaches itself");
    }

    #[test]
    fn ids_are_assigned_once_and_nonzero() {
        let slot = AtomicU64::new(0);
        let a = id_of(&slot, "check.test.id");
        let b = id_of(&slot, "check.test.id");
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }
}
