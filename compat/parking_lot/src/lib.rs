//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace builds in environments without access to crates.io, so the
//! handful of `parking_lot` types the profiler uses ([`Mutex`], [`RwLock`],
//! [`Condvar`]) are provided here with the same (non-poisoning, guard-based)
//! surface. Poisoned std locks are transparently recovered: the simulated
//! machine's state is protected by invariants, not by poisoning.
//!
//! # Runtime lock-order checking (`NMO_LOCK_CHECK`)
//!
//! Because every lock in the workspace goes through this shim, it doubles
//! as the *dynamic* arm of the repo's concurrency analysis (the static arm
//! is the `lock-order` lint in `nmo-lint`). Set the environment variable
//! `NMO_LOCK_CHECK=1` (checked once, at the first lock acquisition) and
//! every **blocking** acquisition is instrumented:
//!
//! * each thread keeps a stack of the locks it currently holds;
//! * a global acquisition graph records, per lock *instance*, the observed
//!   "A held while acquiring B" edges;
//! * before a thread blocks on a lock, the checker walks the graph — if the
//!   locks it already holds are reachable *from* the one it wants, two
//!   threads have used opposite orders and the process **panics** with both
//!   lock names instead of deadlocking silently at some later alignment;
//! * per-name acquisition counts and maximum hold times are recorded and
//!   surfaced through [`lock_report`].
//!
//! [`Mutex::try_lock`] records edges and hold times but never panics:
//! opportunistic reverse-order `try_lock` is a legitimate pattern precisely
//! because it cannot block. A [`Condvar::wait_until`] releases and
//! reacquires its mutex; the reacquisition is exempt from the order check
//! (the wait-loop pattern holds only that lock) but hold times are split
//! around the wait so a report never blames a condvar sleep on the lock.
//!
//! Give the locks that matter stable names with [`Mutex::named`] /
//! [`RwLock::named`]; unnamed locks report as `<unnamed>` with their
//! instance id. When `NMO_LOCK_CHECK` is unset the only cost is one relaxed
//! atomic load per acquisition. Tests can force the checker on in-process
//! with [`check::force_enable`].

#![warn(missing_docs)]
// The compat shims are the one place allowed to touch std::sync directly:
// they exist to wrap it (see clippy.toml's disallowed-methods), and the
// checker's own state must use raw std locks to avoid instrumenting itself.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64;
use std::time::Instant;

pub mod check;

use check::Tracked;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
pub struct Mutex<T: ?Sized> {
    /// Lazily assigned instance id for the lock-order checker (0 = not yet
    /// assigned; ids are only assigned while `NMO_LOCK_CHECK` is active).
    id: AtomicU64,
    /// Stable diagnostics name (see [`Mutex::named`]); `""` for unnamed.
    name: &'static str,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait_until`] can
/// temporarily hand it to `std::sync::Condvar` and put it back; outside that
/// window it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    track: Option<Tracked>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self::named(value, "")
    }

    /// Create a new mutex with a stable name for the lock-order checker's
    /// reports (see [`lock_report`] and the crate docs).
    pub const fn named(value: T, name: &'static str) -> Self {
        Mutex { id: AtomicU64::new(0), name, inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    ///
    /// Under `NMO_LOCK_CHECK=1` this panics instead of deadlocking when the
    /// acquisition inverts an order the process has already observed.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let plan = check::before_blocking_acquire(&self.id, self.name, true);
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { track: plan.map(check::acquired), inner: Some(g) }
    }

    /// Try to acquire the lock without blocking. Never panics on order
    /// inversion — a non-blocking acquisition cannot deadlock the caller.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let plan = check::before_try_acquire(&self.id, self.name, true);
        Some(MutexGuard { track: plan.map(check::acquired), inner: Some(g) })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(track) = self.track.take() {
            check::released(track);
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
///
/// Under `NMO_LOCK_CHECK=1` both `read` and `write` acquisitions are
/// tracked against the same lock instance: a read can block on a pending
/// writer, so reader acquisitions participate in order cycles too.
pub struct RwLock<T: ?Sized> {
    id: AtomicU64,
    name: &'static str,
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    track: Option<Tracked>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    track: Option<Tracked>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self::named(value, "")
    }

    /// Create a new reader-writer lock with a stable diagnostics name (see
    /// [`Mutex::named`]).
    pub const fn named(value: T, name: &'static str) -> Self {
        RwLock { id: AtomicU64::new(0), name, inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let plan = check::before_blocking_acquire(&self.id, self.name, false);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { track: plan.map(check::acquired), inner }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let plan = check::before_blocking_acquire(&self.id, self.name, true);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { track: plan.map(check::acquired), inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(track) = self.track.take() {
            check::released(track);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(track) = self.track.take() {
            check::released(track);
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified or `deadline` passes, releasing the guard's lock
    /// while waiting.
    ///
    /// For the lock-order checker the wait counts as a release followed by
    /// a fresh (order-check-exempt) acquisition, so hold-time statistics
    /// measure actual hold windows, not condvar sleeps.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let reacquire = guard.track.take().map(check::released_for_wait);
        let std_guard = guard.inner.take().expect("guard present outside condvar wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) =
            self.inner.wait_timeout(std_guard, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        guard.track = reacquire.map(check::acquired);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Per-lock-name acquisition statistics recorded while `NMO_LOCK_CHECK` is
/// active (see [`lock_report`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockStats {
    /// The name given via [`Mutex::named`], or `<unnamed>`.
    pub name: &'static str,
    /// Number of completed acquisitions (guard dropped or condvar wait).
    pub acquisitions: u64,
    /// Longest single hold, in nanoseconds.
    pub max_hold_ns: u64,
}

/// Snapshot of the per-name hold-time statistics, sorted by name. Empty
/// unless the checker is (or was) enabled.
pub fn lock_report() -> Vec<LockStats> {
    check::report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        std::thread::scope(|s| {
            let m = &m;
            let cv = &cv;
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                *m.lock() = true;
                cv.notify_all();
            });
            let mut g = m.lock();
            let deadline = Instant::now() + Duration::from_secs(5);
            while !*g {
                let res = cv.wait_until(&mut g, deadline);
                assert!(!res.timed_out(), "missed wakeup");
            }
        });
    }
}
