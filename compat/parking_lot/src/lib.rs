//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace builds in environments without access to crates.io, so the
//! handful of `parking_lot` types the profiler uses ([`Mutex`], [`RwLock`],
//! [`Condvar`]) are provided here with the same (non-poisoning, guard-based)
//! surface. Poisoned std locks are transparently recovered: the simulated
//! machine's state is protected by invariants, not by poisoning.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait_until`] can
/// temporarily hand it to `std::sync::Condvar` and put it back; outside that
/// window it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside condvar wait")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified or `deadline` passes, releasing the guard's lock
    /// while waiting.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside condvar wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (std_guard, result) =
            self.inner.wait_timeout(std_guard, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        std::thread::scope(|s| {
            let m = &m;
            let cv = &cv;
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                *m.lock() = true;
                cv.notify_all();
            });
            let mut g = m.lock();
            let deadline = Instant::now() + Duration::from_secs(5);
            while !*g {
                let res = cv.wait_until(&mut g, deadline);
                assert!(!res.timed_out(), "missed wakeup");
            }
        });
    }
}
