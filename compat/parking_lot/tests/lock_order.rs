//! End-to-end tests for the runtime lock-order checker.
//!
//! These run in one process (cargo's test harness), so each test uses its
//! own lock instances and distinct names; the global acquisition graph is
//! append-only and shared.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{check, lock_report, Mutex};

fn ab_pair(a: &'static str, b: &'static str) -> (Arc<Mutex<u32>>, Arc<Mutex<u32>>) {
    (Arc::new(Mutex::named(0, a)), Arc::new(Mutex::named(0, b)))
}

/// The seeded inversion: one thread establishes A -> B, another attempts
/// B -> A. The checker must panic at the second acquisition instead of
/// letting the schedule decide between "fine" and "deadlock".
#[test]
fn seeded_inversion_panics() {
    check::force_enable();
    let (a, b) = ab_pair("test.inv.a", "test.inv.b");

    // Establish the order A -> B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // Attempt the inverse order on another thread; the panic must carry
    // both lock names so the report is actionable.
    let handle = std::thread::spawn(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    let err = handle.join().expect_err("inverted acquisition must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("inversion"), "panic message: {msg}");
    assert!(msg.contains("test.inv.a") && msg.contains("test.inv.b"), "panic message: {msg}");
}

/// Transitive inversions are caught too: A -> B and B -> C establish
/// A ->* C, so C -> A must panic even though no thread ever held C and A
/// together before.
#[test]
fn transitive_inversion_panics() {
    check::force_enable();
    let a = Arc::new(Mutex::named(0u32, "test.tr.a"));
    let b = Arc::new(Mutex::named(0u32, "test.tr.b"));
    let c = Arc::new(Mutex::named(0u32, "test.tr.c"));

    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    let handle = std::thread::spawn(move || {
        let _gc = c.lock();
        let _ga = a.lock();
    });
    assert!(handle.join().is_err(), "transitive inversion must panic");
}

/// Re-locking a mutex the thread already holds would deadlock under std;
/// the checker reports it instead.
#[test]
fn self_deadlock_panics() {
    check::force_enable();
    let m = Arc::new(Mutex::named(0u32, "test.self.m"));
    let handle = std::thread::spawn(move || {
        let _g1 = m.lock();
        let _g2 = m.lock();
    });
    let err = handle.join().expect_err("recursive lock must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("self-deadlock"), "panic message: {msg}");
}

/// Consistent ordering across threads never trips the checker, and the
/// observed edges/statistics show up in the reports.
#[test]
fn consistent_order_is_quiet_and_reported() {
    check::force_enable();
    let (a, b) = ab_pair("test.ok.a", "test.ok.b");
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("consistent order must not panic");
    }
    assert_eq!(*a.lock(), 400);

    let report = lock_report();
    let stat = |name: &str| report.iter().find(|s| s.name == name).expect("lock in report");
    // 400 loop acquisitions + the final assertion's read for `a`.
    assert!(stat("test.ok.a").acquisitions >= 401, "report: {report:?}");
    assert!(stat("test.ok.b").acquisitions >= 400, "report: {report:?}");
    assert!(
        check::order_edges().contains(&("test.ok.a".to_string(), "test.ok.b".to_string())),
        "edges: {:?}",
        check::order_edges()
    );
}

/// `try_lock` in the inverse order must not panic — it cannot block, so it
/// cannot deadlock; it still contributes edges for later blocking checks.
#[test]
fn try_lock_in_reverse_order_is_allowed() {
    check::force_enable();
    let (a, b) = ab_pair("test.try.a", "test.try.b");
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let _gb = b.lock();
    let ga = a.try_lock();
    assert!(ga.is_some(), "uncontended try_lock should succeed");
}

/// Hold times around a condvar wait exclude the sleep: the guard is
/// released for the duration of the wait, so max_hold_ns for the lock must
/// stay far below the wait timeout.
#[test]
fn condvar_wait_splits_hold_times() {
    use std::time::Instant;
    check::force_enable();
    let m = Mutex::named(false, "test.cv.m");
    let cv = parking_lot::Condvar::new();
    let mut g = m.lock();
    let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(200));
    assert!(res.timed_out());
    drop(g);

    let report = lock_report();
    let stat = report.iter().find(|s| s.name == "test.cv.m").expect("lock in report");
    assert_eq!(stat.acquisitions, 2, "wait counts as release + reacquire");
    assert!(
        stat.max_hold_ns < Duration::from_millis(150).as_nanos() as u64,
        "hold time must exclude the 200ms condvar wait; got {}ns",
        stat.max_hold_ns
    );
}
