//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] implemented for numeric
//! ranges, [`arbitrary::any`], [`strategy::Just`], [`prop_oneof!`],
//! `prop::collection::vec`, and the `prop_assert*` macros. Each property runs
//! for a fixed number of randomly generated cases (`PROPTEST_CASES`
//! overrides the default of 96); failing inputs are reported through the
//! panic message but are *not* shrunk.

#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation for the [`crate::proptest!`] macro.

    use rand::{RngCore, SeedableRng, StdRng};

    /// Default number of cases per property (override with `PROPTEST_CASES`).
    pub const DEFAULT_CASES: u32 = 96;

    /// Number of cases to run, honouring the `PROPTEST_CASES` env variable.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    /// The generator handed to strategies while producing one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Deterministic generator derived from the property's name, so runs
        /// are reproducible without a persisted seed file.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Integers uniformly samplable from ranges (implementation detail of the
    /// range `Strategy` impls).
    pub trait UniformInt: Copy {
        /// Sample uniformly from `[lo, lo + span)`; `span == 0` means the full
        /// 2^64 wheel (i.e. the whole inclusive domain).
        fn uniform_span(rng: &mut TestRng, lo: Self, span: u64) -> Self;

        /// The value as a `u64` bit pattern (for span arithmetic).
        fn to_wheel(self) -> u64;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn uniform_span(rng: &mut TestRng, lo: Self, span: u64) -> Self {
                    let draw = if span == 0 {
                        rng.next_u64()
                    } else {
                        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                    };
                    (lo as u64).wrapping_add(draw) as $t
                }

                fn to_wheel(self) -> u64 {
                    self as u64
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: UniformInt + PartialOrd> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = self.end.to_wheel().wrapping_sub(self.start.to_wheel());
            T::uniform_span(rng, self.start, span)
        }
    }

    impl<T: UniformInt + PartialOrd> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start() <= self.end(), "cannot sample empty range");
            let span = self.end().to_wheel().wrapping_sub(self.start().to_wheel()).wrapping_add(1);
            T::uniform_span(rng, *self.start(), span)
        }
    }

    /// Box a strategy (helper for [`crate::prop_oneof!`]).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: PhantomData }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! Everything a property-test module normally imports.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `body` for many generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("case {} of {}" $(, ", ", stringify!($arg), " = {:?}")*),
                        __case + 1, __cases $(, $arg)*
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = __result {
                        eprintln!("proptest failure in {} ({})", stringify!($name), __inputs);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any_stay_in_bounds(x in 10u64..20, y in 0usize..=4, z in any::<u8>()) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
            let _ = z;
        }

        #[test]
        fn oneof_and_vec_compose(v in prop::collection::vec(prop_oneof![Just(1u32), Just(2)], 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
